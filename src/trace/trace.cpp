#include "trace/trace.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace gcopss::trace {

using game::GameMap;
using game::ObjectDatabase;
using game::ObjectId;
using game::Position;

std::vector<Position> assignPlayersToAreas(const GameMap& map, Rng& rng,
                                           std::size_t players, std::size_t minPerArea,
                                           std::size_t maxPerArea) {
  const auto& areas = map.areas();
  if (players < areas.size() * minPerArea) {
    // Small configurations (tests, examples): spread round-robin instead.
    std::vector<Position> out;
    out.reserve(players);
    for (std::size_t i = 0; i < players; ++i) out.push_back(Position{areas[i % areas.size()]});
    return out;
  }
  // Draw a count per area in [min,max], then rescale to hit the exact total
  // while staying inside the bounds.
  std::vector<std::size_t> counts(areas.size());
  std::size_t total = 0;
  for (auto& c : counts) {
    c = static_cast<std::size_t>(rng.uniformInt(static_cast<std::int64_t>(minPerArea),
                                                static_cast<std::int64_t>(maxPerArea)));
    total += c;
  }
  // Adjust by +-1 steps on random areas until the total matches.
  while (total != players) {
    const auto i = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(areas.size()) - 1));
    if (total < players && counts[i] < maxPerArea) {
      ++counts[i];
      ++total;
    } else if (total > players && counts[i] > minPerArea) {
      --counts[i];
      --total;
    }
  }
  std::vector<Position> out;
  out.reserve(players);
  for (std::size_t i = 0; i < areas.size(); ++i) {
    for (std::size_t k = 0; k < counts[i]; ++k) out.push_back(Position{areas[i]});
  }
  return out;
}

Trace generateMicrobenchTrace(const GameMap& map, const ObjectDatabase& db,
                              const MicrobenchTraceConfig& cfg) {
  Rng rng(cfg.seed);
  Trace out;
  out.duration = cfg.duration;
  for (const Name& area : map.areas()) {
    for (std::size_t k = 0; k < cfg.playersPerArea; ++k) {
      out.playerPositions.push_back(Position{area});
    }
  }
  // Pre-expand each player's visible object set once.
  std::map<Name, std::vector<ObjectId>> visibleCache;
  for (std::size_t p = 0; p < out.playerPositions.size(); ++p) {
    const Position& pos = out.playerPositions[p];
    auto it = visibleCache.find(pos.area);
    if (it == visibleCache.end()) {
      it = visibleCache.emplace(pos.area, db.visibleObjects(map, pos)).first;
    }
    const auto& visible = it->second;
    assert(!visible.empty());
    const SimTime period = rng.uniformInt(cfg.periodMin, cfg.periodMax);
    SimTime t = rng.uniformInt(0, period);  // random phase
    while (t < cfg.duration) {
      TraceRecord rec;
      rec.time = t;
      rec.playerId = static_cast<std::uint32_t>(p);
      rec.objectId = visible[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(visible.size()) - 1))];
      rec.cd = db.object(rec.objectId).leafCd;
      rec.size = static_cast<Bytes>(
          rng.uniformInt(static_cast<std::int64_t>(cfg.sizeMin),
                         static_cast<std::int64_t>(cfg.sizeMax)));
      out.records.push_back(std::move(rec));
      t += period;
    }
  }
  std::sort(out.records.begin(), out.records.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
  return out;
}

Trace generateCsTrace(const GameMap& map, const ObjectDatabase& db,
                      const CsTraceConfig& cfg) {
  Rng rng(cfg.seed);
  Trace out;
  out.duration = cfg.meanInterArrival * static_cast<SimTime>(cfg.totalUpdates);
  out.playerPositions = assignPlayersToAreas(map, rng, cfg.players,
                                             cfg.playersPerAreaMin, cfg.playersPerAreaMax);

  // Heavy-tailed per-player publish rates (Fig 3c): lognormal weights,
  // normalised so the aggregate rate hits 1 / meanInterArrival.
  std::vector<double> weight(cfg.players);
  double weightSum = 0.0;
  for (auto& w : weight) {
    w = rng.lognormal(0.0, cfg.rateSigma);
    weightSum += w;
  }
  const double aggregateRate = 1.0 / static_cast<double>(cfg.meanInterArrival);  // per ns

  std::map<Name, std::vector<ObjectId>> visibleCache;
  auto visibleFor = [&](const Position& pos) -> const std::vector<ObjectId>& {
    auto it = visibleCache.find(pos.area);
    if (it == visibleCache.end()) {
      it = visibleCache.emplace(pos.area, db.visibleObjects(map, pos)).first;
    }
    return it->second;
  };

  // Hot-spot leaf pools: all leaf CDs under each hot region, weighted by
  // object count (players crowding a region touch its objects).
  struct HotPool {
    double weight;
    std::vector<ObjectId> objects;
  };
  std::vector<HotPool> hotPools;
  for (const auto& [areaLabel, w] : cfg.hotAreas) {
    HotPool pool;
    pool.weight = w;
    const Name area = Name::parse(areaLabel);
    for (const Name& leaf : map.leafCds()) {
      if (area.isPrefixOf(leaf)) {
        const auto& ids = db.objectsIn(leaf);
        pool.objects.insert(pool.objects.end(), ids.begin(), ids.end());
      }
    }
    if (pool.objects.empty()) throw std::invalid_argument("hot region has no objects");
    hotPools.push_back(std::move(pool));
  }
  std::vector<double> hotWeights;
  for (const auto& p : hotPools) hotWeights.push_back(p.weight);

  const SimTime hotspotStart =
      static_cast<SimTime>(cfg.hotspotStartFrac * static_cast<double>(out.duration));

  // Generate per-player Poisson arrivals, then merge.
  out.records.reserve(cfg.totalUpdates + cfg.totalUpdates / 8);
  for (std::size_t p = 0; p < cfg.players; ++p) {
    const double rate = aggregateRate * weight[p] / weightSum;  // events per ns
    if (rate <= 0.0) continue;
    const double meanGap = 1.0 / rate;
    Rng prng = rng.fork();
    SimTime t = static_cast<SimTime>(prng.exponential(meanGap));
    const auto& visible = visibleFor(out.playerPositions[p]);
    while (t < out.duration) {
      TraceRecord rec;
      rec.time = t;
      rec.playerId = static_cast<std::uint32_t>(p);
      const bool hot = t >= hotspotStart && !hotPools.empty() && prng.bernoulli(cfg.hotShare);
      if (hot) {
        const auto& pool = hotPools[prng.weightedIndex(hotWeights)];
        rec.objectId = pool.objects[static_cast<std::size_t>(
            prng.uniformInt(0, static_cast<std::int64_t>(pool.objects.size()) - 1))];
      } else {
        rec.objectId = visible[static_cast<std::size_t>(
            prng.uniformInt(0, static_cast<std::int64_t>(visible.size()) - 1))];
      }
      rec.cd = db.object(rec.objectId).leafCd;
      rec.size = static_cast<Bytes>(
          prng.uniformInt(static_cast<std::int64_t>(cfg.sizeMin),
                          static_cast<std::int64_t>(cfg.sizeMax)));
      out.records.push_back(std::move(rec));
      t += static_cast<SimTime>(prng.exponential(meanGap));
    }
  }
  std::sort(out.records.begin(), out.records.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
  if (out.records.size() > cfg.totalUpdates) {
    out.records.resize(cfg.totalUpdates);
    out.duration = out.records.back().time + 1;
  }
  return out;
}

TraceStats computeStats(const GameMap& map, const ObjectDatabase& db, const Trace& trace) {
  TraceStats stats;
  stats.updatesPerPlayer.assign(trace.playerPositions.size(), 0);
  for (const TraceRecord& rec : trace.records) {
    if (rec.playerId < stats.updatesPerPlayer.size()) ++stats.updatesPerPlayer[rec.playerId];
  }
  std::map<Name, std::size_t> playerCounts;
  for (const auto& pos : trace.playerPositions) ++playerCounts[pos.area];
  for (const Name& area : map.areas()) {
    stats.playersPerArea.emplace_back(area, playerCounts[area]);
    stats.objectsPerArea.emplace_back(map.leafCdOf(area),
                                      db.objectsIn(map.leafCdOf(area)).size());
  }
  return stats;
}

}  // namespace gcopss::trace
