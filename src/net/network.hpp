#pragma once

#include <cassert>
#include <functional>
#include <set>
#include <memory>
#include <unordered_map>
#include <vector>

#include "des/parallel.hpp"
#include "des/simulator.hpp"
#include "net/fault.hpp"
#include "net/observer.hpp"
#include "net/packet.hpp"
#include "net/params.hpp"
#include "net/queue.hpp"
#include "net/topology.hpp"

namespace gcopss {

class Network;

// A protocol endpoint bound to one topology node. "Faces" are identified by
// the neighbour's NodeId (the paper's per-face IPC ports collapse to this in
// simulation). Each node owns a FIFO CPU: arriving packets queue for
// serviceTime() before handle() runs — this queueing is what produces the
// RP/server congestion the evaluation studies.
class Node {
 public:
  Node(NodeId id, Network& net);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  // Invoked after the packet has completed CPU service at this node.
  // `fromFace` is the neighbour it arrived from (kInvalidNode for packets
  // originated locally, e.g. an application publish).
  virtual void handle(NodeId fromFace, const PacketPtr& pkt) = 0;

  // CPU cost of processing one packet at this node.
  virtual SimTime serviceTime(const PacketPtr& pkt) const = 0;

  // Fault-plan lifecycle hooks. onCrash() fires when a scheduled NodeFaultSpec
  // takes the node down (volatile state is gone); onRestart() when it comes
  // back (re-announce / resync). The bare setNodeFailed() blackhole does NOT
  // invoke these — it stays the low-level primitive.
  virtual void onCrash() {}
  virtual void onRestart() {}

  // Time until this node's CPU drains its current queue (0 = idle).
  SimTime cpuBacklog() const;

  // Worst serialization backlog over this node's outgoing face queues
  // (0 when link queues are disabled). The transmit-side twin of
  // cpuBacklog(): an RP whose uplink is saturated shows congestion here
  // even with an idle CPU, so the load balancer consumes the sum of both.
  SimTime faceQueueBacklog() const;

  std::uint64_t dropCount() const { return drops_; }

 protected:
  void send(NodeId toFace, PacketPtr pkt);
  // Send after an extra delay (e.g. a server pacing its unicast copies).
  void sendAfter(SimTime delay, NodeId toFace, PacketPtr pkt);
  // Occupy this node's CPU for `extra` beyond the current service — models
  // per-recipient work discovered only while handling a packet (the IP game
  // server's unicast fan-out cost).
  void extendCpuBusy(SimTime extra);
  // Inject a locally originated packet into this node's own CPU queue.
  void deliverLocal(PacketPtr pkt);
  Simulator& sim();
  const Simulator& sim() const;
  Network& network() { return *net_; }
  const SimParams& params() const;

 private:
  friend class Network;
  NodeId id_;
  Network* net_;
  // The simulator lane this node's events run on. Serial runs: the network's
  // Simulator. Parallel runs: the owning shard's Simulator (set by
  // Network::enableParallel) — all of this node's timers, CPU completions
  // and state live on that one lane, so handlers never need locks.
  Simulator* shardSim_;
  SimTime cpuFreeAt_ = 0;
  std::uint64_t drops_ = 0;
  // Per-node transmit counter: the (srcNode, srcSeq) half of the parallel
  // engine's deterministic merge key. Independent of the shard mapping.
  std::uint64_t sendSeq_ = 0;
};

// Binds a Topology to a Simulator and a set of Nodes; moves packets across
// links (propagation + transmission delay) into the receiver's CPU queue and
// meters aggregate network load (bytes x link traversals).
class Network {
 public:
  Network(Simulator& sim, Topology& topo, SimParams params = {});

  void attach(std::unique_ptr<Node> node);
  template <typename T, typename... Args>
  T& emplaceNode(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *node;
    attach(std::move(node));
    return ref;
  }

  Node& node(NodeId id);
  bool hasNode(NodeId id) const;

  Simulator& sim() { return sim_; }
  Topology& topology() { return topo_; }
  const SimParams& params() const { return params_; }
  SimParams& mutableParams() { return params_; }

  // Send `pkt` from node `from` to adjacent node `to`.
  void transmit(NodeId from, NodeId to, PacketPtr pkt);

  // Give every directed link a finite-bandwidth transmit queue guarded by
  // the configured discipline (see net/queue.hpp). Call after the topology
  // is final (all links added, hosts attached) and before any traffic;
  // replaces any previous queue set. Default-off: without this call the
  // legacy transmit path (fixed serialization delay, no occupancy) is
  // byte-for-byte unchanged.
  void enableLinkQueues(const LinkQueueConfig& cfg);
  bool linkQueuesEnabled() const { return !faceQueues_.empty(); }
  const LinkQueueConfig& linkQueueConfig() const { return queueCfg_; }
  // The (from -> to) face queue; throws if queues are off or no such link.
  const FaceQueue& faceQueue(NodeId from, NodeId to) const;
  // Worst serialization backlog over `id`'s outgoing faces at `now`
  // (0 with queues off). Shard-safe from `id`'s own lane: a node's
  // outgoing queues are written only when that node transmits.
  SimTime maxFaceBacklog(NodeId id, SimTime now) const;
  // Roll-up over every face queue. Sequential context only.
  QueueAggregate queueAggregate() const;

  // Enqueue a packet into `at`'s CPU queue (used for local origination).
  void enqueueCpu(NodeId at, NodeId fromFace, PacketPtr pkt);

  // Failure injection: a failed node blackholes everything addressed to it
  // (its CPU never runs) until revived. Links stay up — neighbours keep
  // transmitting into the void, as with a crashed router.
  void setNodeFailed(NodeId id, bool failed);
  bool isFailed(NodeId id) const { return failed_.count(id) > 0; }

  // Install a seeded fault schedule: per-link loss/jitter/reorder applied to
  // every subsequent transmit, and node crash/restart events scheduled on the
  // simulator (crash = setNodeFailed + onCrash; restart = revive + onRestart).
  // Call once, before run(); replaces any previous plan.
  void applyFaultPlan(const FaultPlan& plan);
  bool hasFaultPlan() const { return fault_ != nullptr; }
  // Zeroed stats when no plan is installed.
  const FaultStats& faultStats() const {
    static const FaultStats kEmpty{};
    return fault_ ? fault_->stats() : kEmpty;
  }

  // Passive packet tap (see net/observer.hpp). At most one at a time; the
  // caller keeps ownership and must clear it (or outlive the Network) before
  // the observer dies. Null = no tap, zero overhead beyond a pointer test.
  // Serial-only: observers see a single global event order that does not
  // exist under the parallel engine (asserted both ways).
  void setObserver(PacketObserver* obs) {
    assert(!(obs && par_) && "packet observers are serial-only");
    observer_ = obs;
  }
  PacketObserver* observer() const { return observer_; }

  // Switch this network onto the parallel engine: nodes are partitioned
  // round-robin across `psim`'s shards, every node's lane becomes its
  // shard's Simulator, and transmits route through the engine's
  // deterministic cross-shard merge. Call after attaching nodes and before
  // scheduling any traffic; psim's global lane must be this network's
  // Simulator. Requires: no observer, lookahead <= minLinkDelay, and any
  // fault plan built withIndependentStreams().
  void enableParallel(ParallelSimulator& psim);
  bool parallelEnabled() const { return par_ != nullptr; }
  ParallelSimulator* parallel() { return par_; }
  std::size_t shardOf(NodeId id) const {
    return par_ ? shardOf_[static_cast<std::size_t>(id)] : 0;
  }
  // The simulator lane `id`'s events run on (the network Simulator when
  // serial). Harnesses use it to pre-schedule per-node work onto the right
  // shard from sequential context.
  Simulator& nodeSim(NodeId id) { return *node(id).shardSim_; }

  // Aggregate load meters. In parallel runs the counters are kept per shard
  // (summed here); only read them from sequential context.
  Bytes totalLinkBytes() const { return sumMeters().bytes; }
  std::uint64_t totalLinkPackets() const { return sumMeters().pkts; }
  std::uint64_t totalDrops() const { return sumMeters().drops; }
  // Face-queue refusals only (also counted in totalDrops()).
  std::uint64_t totalQueueDrops() const { return sumMeters().queueDrops; }
  void resetLoadMeter() {
    totalLinkBytes_ = 0;
    totalLinkPackets_ = 0;
    totalDrops_ = 0;
    totalQueueDrops_ = 0;
    for (auto& m : shardMeters_) m = ShardMeter{};
  }

 private:
  friend class Node;

  // Cache-line-sized per-shard load meter: each worker bumps only its own
  // slot during a round, so the hot path stays contention- and race-free.
  struct alignas(64) ShardMeter {
    Bytes bytes = 0;
    std::uint64_t pkts = 0;
    std::uint64_t drops = 0;
    std::uint64_t queueDrops = 0;
  };
  ShardMeter sumMeters() const {
    ShardMeter t{totalLinkBytes_, totalLinkPackets_, totalDrops_, totalQueueDrops_};
    for (const auto& m : shardMeters_) {
      t.bytes += m.bytes;
      t.pkts += m.pkts;
      t.drops += m.drops;
      t.queueDrops += m.queueDrops;
    }
    return t;
  }
  void meterTx(Bytes size);
  void meterDrop();
  void meterQueueDrop();
  // The queued-transmit data path (faceQueues_ non-empty).
  void transmitQueued(NodeId from, NodeId to, PacketPtr pkt);
  FaceQueue& faceQueueRef(NodeId from, NodeId to);

  Simulator& sim_;
  Topology& topo_;
  SimParams params_;
  std::vector<std::unique_ptr<Node>> nodes_;  // indexed by NodeId
  std::set<NodeId> failed_;
  std::unique_ptr<FaultInjector> fault_;
  PacketObserver* observer_ = nullptr;
  ParallelSimulator* par_ = nullptr;
  std::vector<std::size_t> shardOf_;  // NodeId -> shard (parallel only)
  std::vector<ShardMeter> shardMeters_;
  Bytes totalLinkBytes_ = 0;
  std::uint64_t totalLinkPackets_ = 0;
  std::uint64_t totalDrops_ = 0;
  std::uint64_t totalQueueDrops_ = 0;
  // Face queues, 2 per topology link, indexed 2*linkIdx + direction
  // (0 = link.a -> link.b). Built once by enableLinkQueues; each queue is
  // then mutated only by the lane owning its sending node.
  LinkQueueConfig queueCfg_;
  GCOPSS_SHARD_CONFINED std::vector<FaceQueue> faceQueues_;
};

}  // namespace gcopss
