#pragma once

#include <functional>
#include <set>
#include <memory>
#include <unordered_map>
#include <vector>

#include "des/simulator.hpp"
#include "net/fault.hpp"
#include "net/observer.hpp"
#include "net/packet.hpp"
#include "net/params.hpp"
#include "net/topology.hpp"

namespace gcopss {

class Network;

// A protocol endpoint bound to one topology node. "Faces" are identified by
// the neighbour's NodeId (the paper's per-face IPC ports collapse to this in
// simulation). Each node owns a FIFO CPU: arriving packets queue for
// serviceTime() before handle() runs — this queueing is what produces the
// RP/server congestion the evaluation studies.
class Node {
 public:
  Node(NodeId id, Network& net);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  // Invoked after the packet has completed CPU service at this node.
  // `fromFace` is the neighbour it arrived from (kInvalidNode for packets
  // originated locally, e.g. an application publish).
  virtual void handle(NodeId fromFace, const PacketPtr& pkt) = 0;

  // CPU cost of processing one packet at this node.
  virtual SimTime serviceTime(const PacketPtr& pkt) const = 0;

  // Fault-plan lifecycle hooks. onCrash() fires when a scheduled NodeFaultSpec
  // takes the node down (volatile state is gone); onRestart() when it comes
  // back (re-announce / resync). The bare setNodeFailed() blackhole does NOT
  // invoke these — it stays the low-level primitive.
  virtual void onCrash() {}
  virtual void onRestart() {}

  // Time until this node's CPU drains its current queue (0 = idle).
  SimTime cpuBacklog() const;

  std::uint64_t dropCount() const { return drops_; }

 protected:
  void send(NodeId toFace, PacketPtr pkt);
  // Send after an extra delay (e.g. a server pacing its unicast copies).
  void sendAfter(SimTime delay, NodeId toFace, PacketPtr pkt);
  // Occupy this node's CPU for `extra` beyond the current service — models
  // per-recipient work discovered only while handling a packet (the IP game
  // server's unicast fan-out cost).
  void extendCpuBusy(SimTime extra);
  // Inject a locally originated packet into this node's own CPU queue.
  void deliverLocal(PacketPtr pkt);
  Simulator& sim();
  const Simulator& sim() const;
  Network& network() { return *net_; }
  const SimParams& params() const;

 private:
  friend class Network;
  NodeId id_;
  Network* net_;
  SimTime cpuFreeAt_ = 0;
  std::uint64_t drops_ = 0;
};

// Binds a Topology to a Simulator and a set of Nodes; moves packets across
// links (propagation + transmission delay) into the receiver's CPU queue and
// meters aggregate network load (bytes x link traversals).
class Network {
 public:
  Network(Simulator& sim, Topology& topo, SimParams params = {});

  void attach(std::unique_ptr<Node> node);
  template <typename T, typename... Args>
  T& emplaceNode(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *node;
    attach(std::move(node));
    return ref;
  }

  Node& node(NodeId id);
  bool hasNode(NodeId id) const;

  Simulator& sim() { return sim_; }
  Topology& topology() { return topo_; }
  const SimParams& params() const { return params_; }
  SimParams& mutableParams() { return params_; }

  // Send `pkt` from node `from` to adjacent node `to`.
  void transmit(NodeId from, NodeId to, PacketPtr pkt);

  // Enqueue a packet into `at`'s CPU queue (used for local origination).
  void enqueueCpu(NodeId at, NodeId fromFace, PacketPtr pkt);

  // Failure injection: a failed node blackholes everything addressed to it
  // (its CPU never runs) until revived. Links stay up — neighbours keep
  // transmitting into the void, as with a crashed router.
  void setNodeFailed(NodeId id, bool failed);
  bool isFailed(NodeId id) const { return failed_.count(id) > 0; }

  // Install a seeded fault schedule: per-link loss/jitter/reorder applied to
  // every subsequent transmit, and node crash/restart events scheduled on the
  // simulator (crash = setNodeFailed + onCrash; restart = revive + onRestart).
  // Call once, before run(); replaces any previous plan.
  void applyFaultPlan(const FaultPlan& plan);
  bool hasFaultPlan() const { return fault_ != nullptr; }
  // Zeroed stats when no plan is installed.
  const FaultStats& faultStats() const {
    static const FaultStats kEmpty{};
    return fault_ ? fault_->stats() : kEmpty;
  }

  // Passive packet tap (see net/observer.hpp). At most one at a time; the
  // caller keeps ownership and must clear it (or outlive the Network) before
  // the observer dies. Null = no tap, zero overhead beyond a pointer test.
  void setObserver(PacketObserver* obs) { observer_ = obs; }
  PacketObserver* observer() const { return observer_; }

  Bytes totalLinkBytes() const { return totalLinkBytes_; }
  std::uint64_t totalLinkPackets() const { return totalLinkPackets_; }
  std::uint64_t totalDrops() const { return totalDrops_; }
  void resetLoadMeter() {
    totalLinkBytes_ = 0;
    totalLinkPackets_ = 0;
  }

 private:
  friend class Node;
  Simulator& sim_;
  Topology& topo_;
  SimParams params_;
  std::vector<std::unique_ptr<Node>> nodes_;  // indexed by NodeId
  std::set<NodeId> failed_;
  std::unique_ptr<FaultInjector> fault_;
  PacketObserver* observer_ = nullptr;
  Bytes totalLinkBytes_ = 0;
  std::uint64_t totalLinkPackets_ = 0;
  std::uint64_t totalDrops_ = 0;
};

}  // namespace gcopss
