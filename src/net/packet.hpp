#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "common/units.hpp"

namespace gcopss {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

// Refcount threading policy. The parallel DES engine hands packet refcounts
// to multiple threads — a multicast fan-out retains on the sender's shard and
// the last reference can die on a receiver's shard — so the count is atomic
// by default (relaxed increments, acq/rel decrement: uncontended it is a
// plain locked add, ~1ns, invisible next to a CalendarQueue push).
//
// Builds that want the PR-3 serial fast path back can define
// GCOPSS_SERIAL_REFCOUNT, which swaps in a plain uint32 — and flips
// PacketThreading::kAtomicRefCount to false, which makes every entry point
// into the parallel engine (Network::enableParallel, ParallelSimulator
// users) a static_assert failure. Misuse is a compile error, not a TSan
// finding. See docs/ARCHITECTURE.md "Threading model".
struct PacketThreading {
#ifdef GCOPSS_SERIAL_REFCOUNT
  static constexpr bool kAtomicRefCount = false;
  using RefCount = std::uint32_t;
#else
  static constexpr bool kAtomicRefCount = true;
  using RefCount = std::atomic<std::uint32_t>;
#endif
};

// Base class for every packet in the simulation. A single Kind enum spans all
// protocol families (NDN, COPSS, IP baseline) so routers can branch on kind
// without RTTI; `packet_cast` checks the kind before downcasting.
//
// Packets are intrusively reference-counted (see RefPtr below): multicast
// fan-out hands the same immutable payload to every face as a pointer bump
// with no control-block allocation. The count's threading policy lives in
// PacketThreading above (atomic unless GCOPSS_SERIAL_REFCOUNT). The count
// lives in the object, so a packet must reach a RefPtr straight from `new`
// (makePacket/makeMutablePacket do this).
struct Packet {
  enum class Kind : std::uint8_t {
    // NDN engine
    Interest,
    Data,
    // COPSS engine
    Subscribe,
    Unsubscribe,
    Multicast,
    FibAdd,
    FibRemove,
    // COPSS RP-migration control (Section IV-B)
    RpHandoff,
    StJoin,
    StConfirm,
    StLeave,
    // COPSS fault recovery (reliable publish, RP liveness, ST resync)
    PubAck,
    RpHeartbeat,
    StResync,
    // COPSS epoch reconciliation (restart-time RP ownership handshake)
    RpReclaim,
    RpDemote,
    // IP baseline
    IpUnicast,
    IpMulticastPkt,
    IpGroupJoin,
    IpGroupLeave,
  };

  Packet(Kind k, Bytes sz) : kind(k), size(sz) {}
  virtual ~Packet() = default;

  // Copying is for clonePacket() of a derived packet only (the copy starts
  // a fresh refcount); assignment would desync count and identity, so both
  // forms are deleted. This replaces the old public-copy/deleted-assign
  // mix, which let any call site slice-copy a packet by accident.
  Packet& operator=(const Packet&) = delete;
  Packet& operator=(Packet&&) = delete;

  Kind kind;
  Bytes size;

 protected:
  Packet(const Packet& other) : kind(other.kind), size(other.size) {}

 private:
  template <typename T>
  friend class RefPtr;

  mutable PacketThreading::RefCount refs_{0};
};

// Intrusive smart pointer for Packet hierarchies. shared_ptr-shaped API for
// the subset the codebase uses; copying is one refcount increment (atomic or
// plain per PacketThreading).
template <typename T>
class RefPtr {
 public:
  RefPtr() = default;
  RefPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  // Adopt a freshly new'ed packet (or retain an existing live one).
  explicit RefPtr(T* p) : p_(p) { retain(); }

  RefPtr(const RefPtr& o) : p_(o.p_) { retain(); }
  RefPtr(RefPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }

  // Converting copy/move (derived -> base, mutable -> const).
  template <typename U, typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  RefPtr(const RefPtr<U>& o) : p_(o.get()) {  // NOLINT(google-explicit-constructor)
    retain();
  }
  template <typename U, typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  RefPtr(RefPtr<U>&& o) noexcept : p_(o.release()) {}  // NOLINT(google-explicit-constructor)

  RefPtr& operator=(const RefPtr& o) {
    RefPtr(o).swap(*this);
    return *this;
  }
  RefPtr& operator=(RefPtr&& o) noexcept {
    RefPtr(std::move(o)).swap(*this);
    return *this;
  }
  RefPtr& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  ~RefPtr() { releaseRef(); }

  T* get() const { return p_; }
  T& operator*() const { return *p_; }
  T* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

  void reset() { RefPtr().swap(*this); }
  void swap(RefPtr& o) noexcept { std::swap(p_, o.p_); }

  // Hand the raw pointer over without touching the count (move plumbing).
  T* release() noexcept {
    T* p = p_;
    p_ = nullptr;
    return p;
  }

  friend bool operator==(const RefPtr& a, const RefPtr& b) { return a.p_ == b.p_; }
  friend bool operator==(const RefPtr& a, std::nullptr_t) { return a.p_ == nullptr; }

 private:
  void retain() {
    if (!p_) return;
    if constexpr (PacketThreading::kAtomicRefCount) {
      // A retain always starts from an existing reference, so relaxed order
      // suffices — visibility of the object is carried by whatever handed
      // the pointer across threads (the round barrier, in the parallel DES).
      p_->refs_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++p_->refs_;
    }
  }
  void releaseRef() {
    if (!p_) return;
    if constexpr (PacketThreading::kAtomicRefCount) {
      // acq_rel: the final decrement must observe every other shard's writes
      // (release) before the delete runs here (acquire).
      if (p_->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete p_;
    } else {
      if (--p_->refs_ == 0) delete p_;
    }
  }

  T* p_ = nullptr;
};

using PacketPtr = RefPtr<const Packet>;

template <typename T>
const T& packet_cast(const PacketPtr& p) {
  assert(p && p->kind == T::kKind);
  return static_cast<const T&>(*p);
}

// static_pointer_cast analogue: `packet_pointer_cast<DataPacket>(pkt)`
// yields RefPtr<const DataPacket>. The caller vouches for the kind (assert
// via packet_cast where unsure).
template <typename T, typename U>
RefPtr<const T> packet_pointer_cast(const RefPtr<U>& p) {
  return RefPtr<const T>(static_cast<const T*>(p.get()));
}

// dynamic_pointer_cast analogue for kind-agnostic probing (codecs, tests).
template <typename T, typename U>
RefPtr<const T> packet_dynamic_cast(const RefPtr<U>& p) {
  return RefPtr<const T>(dynamic_cast<const T*>(p.get()));
}

// Immutable packet, the normal case.
template <typename T, typename... Args>
RefPtr<const T> makePacket(Args&&... args) {
  // gcopss-tidy: allow(hot-alloc) the audited packet-creation boundary: sources/decoders allocate once per packet; forwarding fan-out shares it by RefPtr
  return RefPtr<const T>(new T(std::forward<Args>(args)...));
}

// Mutable packet for build-then-freeze call sites: fill fields, then let it
// convert to PacketPtr on send.
template <typename T, typename... Args>
RefPtr<T> makeMutablePacket(Args&&... args) {
  // gcopss-tidy: allow(hot-alloc) the audited packet-creation boundary: one allocation per packet built, never per forwarded copy
  return RefPtr<T>(new T(std::forward<Args>(args)...));
}

// Explicit copy of a (derived) packet with a fresh refcount.
template <typename T>
RefPtr<const T> clonePacket(const T& src) {
  // gcopss-tidy: allow(hot-alloc) allocation is the point: the sanctioned copy-on-write boundary; hot paths forward by RefPtr and clone only to mutate
  return RefPtr<const T>(new T(src));
}

}  // namespace gcopss
