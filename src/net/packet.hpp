#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "common/units.hpp"

namespace gcopss {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

// Base class for every packet in the simulation. A single Kind enum spans all
// protocol families (NDN, COPSS, IP baseline) so routers can branch on kind
// without RTTI; `packet_cast` checks the kind before downcasting.
struct Packet {
  enum class Kind : std::uint8_t {
    // NDN engine
    Interest,
    Data,
    // COPSS engine
    Subscribe,
    Unsubscribe,
    Multicast,
    FibAdd,
    FibRemove,
    // COPSS RP-migration control (Section IV-B)
    RpHandoff,
    StJoin,
    StConfirm,
    StLeave,
    // COPSS fault recovery (reliable publish, RP liveness, ST resync)
    PubAck,
    RpHeartbeat,
    StResync,
    // IP baseline
    IpUnicast,
    IpMulticastPkt,
    IpGroupJoin,
    IpGroupLeave,
  };

  Packet(Kind k, Bytes sz) : kind(k), size(sz) {}
  virtual ~Packet() = default;

  Packet(const Packet&) = default;
  Packet& operator=(const Packet&) = delete;

  Kind kind;
  Bytes size;
};

using PacketPtr = std::shared_ptr<const Packet>;

template <typename T>
const T& packet_cast(const PacketPtr& p) {
  assert(p && p->kind == T::kKind);
  return static_cast<const T&>(*p);
}

template <typename T, typename... Args>
PacketPtr makePacket(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

}  // namespace gcopss
