#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>

namespace gcopss {

std::uint64_t Topology::key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

NodeId Topology::addNode(std::string label) {
  const auto id = static_cast<NodeId>(labels_.size());
  if (label.empty()) label = "n" + std::to_string(id);
  labels_.push_back(std::move(label));
  adjacency_.emplace_back();
  adjLinks_.emplace_back();
  return id;
}

void Topology::addLink(NodeId a, NodeId b, SimTime delay, double bandwidthBps) {
  assert(a != b);
  assert(a >= 0 && static_cast<std::size_t>(a) < labels_.size());
  assert(b >= 0 && static_cast<std::size_t>(b) < labels_.size());
  assert(!hasLink(a, b) && "duplicate link");
  links_.push_back(Link{a, b, delay, bandwidthBps});
  linkIndex_[key(a, b)] = links_.size() - 1;
  adjacency_[static_cast<std::size_t>(a)].push_back(b);
  adjacency_[static_cast<std::size_t>(b)].push_back(a);
  adjLinks_[static_cast<std::size_t>(a)].emplace_back(b, links_.size() - 1);
  adjLinks_[static_cast<std::size_t>(b)].emplace_back(a, links_.size() - 1);
  spf_.clear();
}

bool Topology::hasLink(NodeId a, NodeId b) const {
  return linkIndex_.count(key(a, b)) > 0;
}

const Topology::Link& Topology::linkBetween(NodeId a, NodeId b) const {
  if (a >= 0 && static_cast<std::size_t>(a) < adjLinks_.size()) {
    for (const auto& [nb, idx] : adjLinks_[static_cast<std::size_t>(a)]) {
      if (nb == b) return links_[idx];
    }
  }
  throw std::out_of_range("no such link");
}

std::size_t Topology::linkIndexBetween(NodeId a, NodeId b) const {
  if (a >= 0 && static_cast<std::size_t>(a) < adjLinks_.size()) {
    for (const auto& [nb, idx] : adjLinks_[static_cast<std::size_t>(a)]) {
      if (nb == b) return idx;
    }
  }
  throw std::out_of_range("no such link");
}

void Topology::setLinkBandwidth(NodeId a, NodeId b, double bps) {
  assert(bps > 0.0);
  links_[linkIndexBetween(a, b)].bandwidthBps = bps;
}

void Topology::setAllBandwidths(double bps) {
  assert(bps > 0.0);
  for (Link& l : links_) l.bandwidthBps = bps;
}

const Topology::SpfTree& Topology::spfFrom(NodeId source) const {
  auto it = spf_.find(source);
  if (it != spf_.end()) return it->second;

  SpfTree tree;
  const std::size_t n = labels_.size();
  tree.dist.assign(n, std::numeric_limits<SimTime>::max());
  tree.parent.assign(n, kInvalidNode);

  using Item = std::pair<SimTime, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  tree.dist[static_cast<std::size_t>(source)] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > tree.dist[static_cast<std::size_t>(u)]) continue;
    for (NodeId v : adjacency_[static_cast<std::size_t>(u)]) {
      const SimTime w = linkBetween(u, v).delay;
      const SimTime nd = d + w;
      if (nd < tree.dist[static_cast<std::size_t>(v)]) {
        tree.dist[static_cast<std::size_t>(v)] = nd;
        tree.parent[static_cast<std::size_t>(v)] = u;
        pq.emplace(nd, v);
      }
    }
  }
  return spf_.emplace(source, std::move(tree)).first->second;
}

NodeId Topology::nextHop(NodeId from, NodeId to) const {
  if (from == to) return from;
  // Walk the destination's parent chain in the SPF tree rooted at `from`.
  const SpfTree& tree = spfFrom(from);
  NodeId cur = to;
  if (tree.parent[static_cast<std::size_t>(cur)] == kInvalidNode) return kInvalidNode;
  while (tree.parent[static_cast<std::size_t>(cur)] != from) {
    cur = tree.parent[static_cast<std::size_t>(cur)];
    if (cur == kInvalidNode) return kInvalidNode;
  }
  return cur;
}

SimTime Topology::pathDelay(NodeId from, NodeId to) const {
  const SpfTree& tree = spfFrom(from);
  const SimTime d = tree.dist[static_cast<std::size_t>(to)];
  if (d == std::numeric_limits<SimTime>::max()) throw std::out_of_range("unreachable");
  return d;
}

std::vector<NodeId> Topology::path(NodeId from, NodeId to) const {
  const SpfTree& tree = spfFrom(from);
  std::vector<NodeId> p;
  NodeId cur = to;
  while (cur != kInvalidNode && cur != from) {
    p.push_back(cur);
    cur = tree.parent[static_cast<std::size_t>(cur)];
  }
  if (cur != from) return {};  // unreachable
  p.push_back(from);
  std::reverse(p.begin(), p.end());
  return p;
}

std::size_t Topology::hopCount(NodeId from, NodeId to) const {
  const auto p = path(from, to);
  return p.empty() ? 0 : p.size() - 1;
}

}  // namespace gcopss
