#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/thread_annotations.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/packet.hpp"

namespace gcopss {

// Declarative, seeded fault schedule applied by Network. Replaces the
// all-or-nothing setNodeFailed() blackhole with a principled fault model:
// per-link packet loss, delay jitter, reordering, link up/down windows, and
// node crash/restart events. Every random decision is drawn from one seeded
// stream in DES order, so a (plan, seed) pair reproduces bit-identically —
// a chaos failure is replayed from its printed seed alone.

struct LinkFaultSpec {
  // Endpoints the spec applies to (either direction). Both kInvalidNode
  // means "every link" — the wildcard used for ambient background loss.
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;

  double lossProb = 0.0;     // iid per-packet drop probability
  SimTime jitterMax = 0;     // uniform extra delay in [0, jitterMax)
  double reorderProb = 0.0;  // chance a packet is held `reorderDelay` longer
  SimTime reorderDelay = 0;  // than its neighbours, overtaking later sends

  struct Window {
    SimTime from = 0;
    SimTime to = 0;  // link blackholes both directions during [from, to)
  };
  std::vector<Window> downWindows;

  bool applies(NodeId x, NodeId y) const {
    if (a == kInvalidNode && b == kInvalidNode) return true;
    return (a == x && b == y) || (a == y && b == x);
  }
  bool downAt(SimTime now) const {
    for (const Window& w : downWindows) {
      if (now >= w.from && now < w.to) return true;
    }
    return false;
  }
};

struct NodeFaultSpec {
  NodeId node = kInvalidNode;
  SimTime crashAt = 0;
  SimTime restartAt = -1;  // < 0: the node never comes back
};

// One counter per injected fault class; exposed through Network so metrics
// and chaos tests can assert that a schedule actually exercised each fault.
struct FaultStats {
  std::uint64_t randomLoss = 0;    // packets dropped by lossProb
  std::uint64_t linkDownLoss = 0;  // packets dropped inside a down window
  std::uint64_t jittered = 0;      // packets given extra delay
  std::uint64_t reordered = 0;     // packets held past a later send
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;

  std::uint64_t totalInjected() const {
    return randomLoss + linkDownLoss + jittered + reordered + crashes + restarts;
  }
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<LinkFaultSpec> links;
  std::vector<NodeFaultSpec> nodes;

  // RNG-stream layout. false (default): one global stream consumed in
  // transmit order — the historical behaviour the recorded chaos goldens
  // were minted under, valid only on the serial engine. true: each directed
  // link (from, to) draws from its own substream seeded by (seed, from, to).
  // Verdicts then depend only on that link's own traffic order, which the
  // deterministic merge preserves — so a (plan, seed) pair reproduces
  // bit-identically at any thread count, including serial. Parallel runs
  // with faults REQUIRE this (Network::enableParallel enforces it): the
  // global stream's draw order would depend on worker interleaving.
  bool independentStreams = false;

  bool empty() const { return links.empty() && nodes.empty(); }

  // --- builders (chainable; cover the common chaos-schedule shapes) ---
  FaultPlan& loseEverywhere(double p) {
    wildcard().lossProb = p;
    return *this;
  }
  FaultPlan& jitterEverywhere(SimTime maxJitter) {
    wildcard().jitterMax = maxJitter;
    return *this;
  }
  FaultPlan& reorderEverywhere(double p, SimTime holdFor) {
    LinkFaultSpec& w = wildcard();
    w.reorderProb = p;
    w.reorderDelay = holdFor;
    return *this;
  }
  FaultPlan& loseOnLink(NodeId a, NodeId b, double p) {
    LinkFaultSpec s;
    s.a = a;
    s.b = b;
    s.lossProb = p;
    links.push_back(s);
    return *this;
  }
  FaultPlan& linkDown(NodeId a, NodeId b, SimTime from, SimTime to) {
    LinkFaultSpec s;
    s.a = a;
    s.b = b;
    s.downWindows.push_back({from, to});
    links.push_back(s);
    return *this;
  }
  FaultPlan& crash(NodeId node, SimTime at, SimTime restartAt = -1) {
    nodes.push_back({node, at, restartAt});
    return *this;
  }
  FaultPlan& withIndependentStreams() {
    independentStreams = true;
    return *this;
  }

 private:
  LinkFaultSpec& wildcard() {
    for (auto& s : links) {
      if (s.a == kInvalidNode && s.b == kInvalidNode) return s;
    }
    links.emplace_back();
    return links.back();
  }
};

// Runtime companion of a FaultPlan: draws the per-packet decisions. Owned by
// Network. Default layout: one RNG stream consumed in transmit order (which
// the serial DES makes deterministic), so verdicts are a pure function of
// (plan, traffic). With plan.independentStreams, decisions for a directed
// link come from that link's own lane — prepareLanes() builds every lane up
// front from the topology, and at run time a lane is touched only by the
// shard that owns the sending node, so onTransmit is safe to call
// concurrently for distinct senders with no locks.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {}

  struct Verdict {
    bool drop = false;
    SimTime extraDelay = 0;
  };

  Verdict onTransmit(NodeId from, NodeId to, SimTime now);

  // Build the per-directed-link lanes (both directions of every topology
  // link). Must be called before traffic when plan().independentStreams;
  // a no-op otherwise. Network::applyFaultPlan does this.
  void prepareLanes(const std::vector<std::pair<NodeId, NodeId>>& directed);
  bool lanesPrepared() const { return !lanes_.empty(); }

  const FaultPlan& plan() const { return plan_; }
  // Aggregated view: with lanes, sums every lane's counters on top of the
  // sequential counters (crashes/restarts). Only call from sequential
  // context (setup, global phase, after run) — lane counters are owned by
  // worker shards while a parallel round is in flight.
  const FaultStats& stats() const;
  FaultStats& stats() { return stats_; }

 private:
  struct Lane {
    Rng rng;
    FaultStats stats;
    Lane() : rng(0) {}
    explicit Lane(std::uint64_t seed) : rng(seed) {}
  };
  static std::uint64_t laneKey(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;  // global-stream draws + crashes/restarts
  // Never mutated after prepareLanes (concurrent find() is read-only);
  // mapped Lanes are mutated only by the sending node's owner shard.
  GCOPSS_SHARD_CONFINED std::unordered_map<std::uint64_t, Lane> lanes_;
  mutable FaultStats agg_;  // scratch for the aggregated stats() view
};

}  // namespace gcopss
