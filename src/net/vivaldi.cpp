#include "net/vivaldi.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace gcopss {

namespace {

double planarNorm(const Coordinate& a, const Coordinate& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

VivaldiSystem::VivaldiSystem(std::size_t nodeCount, Options opts)
    : opts_(opts), coords_(nodeCount), errors_(nodeCount, opts.initialError),
      rng_(opts.seed) {}

double VivaldiSystem::predict(std::size_t i, std::size_t j) const {
  const Coordinate& a = coords_.at(i);
  const Coordinate& b = coords_.at(j);
  return planarNorm(a, b) + a.height + b.height;
}

void VivaldiSystem::observe(std::size_t i, std::size_t j, double rttMs) {
  if (i == j || rttMs <= 0.0) return;
  Coordinate& xi = coords_.at(i);
  const Coordinate& xj = coords_.at(j);
  double& ei = errors_.at(i);
  const double ej = errors_.at(j);

  const double w = ei / (ei + ej);            // confidence weight
  const double dist = predict(i, j);
  const double es = std::abs(dist - rttMs) / rttMs;  // relative sample error
  ei = es * opts_.ce * w + ei * (1.0 - opts_.ce * w);
  const double delta = opts_.cc * w;

  // Unit vector from j to i in the plane; random direction when coincident.
  double ux = xi.x - xj.x;
  double uy = xi.y - xj.y;
  const double norm = std::sqrt(ux * ux + uy * uy);
  if (norm < 1e-9) {
    const double angle = rng_.uniform(0.0, 2.0 * M_PI);
    ux = std::cos(angle);
    uy = std::sin(angle);
  } else {
    ux /= norm;
    uy /= norm;
  }
  const double force = delta * (rttMs - dist);
  xi.x += force * ux;
  xi.y += force * uy;
  // Height absorbs the non-Euclidean access component, split evenly.
  xi.height = std::max(0.0, xi.height + force * 0.1);
}

VivaldiSystem embedTopology(const Topology& topo, const std::vector<NodeId>& nodes,
                            Rng& rng, std::size_t rounds, std::size_t peersPerRound) {
  VivaldiSystem vs(nodes.size(), VivaldiSystem::Options{.ce = 0.25,
                                                        .cc = 0.25,
                                                        .initialError = 1.0,
                                                        .seed = rng.next()});
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t k = 0; k < peersPerRound; ++k) {
        const auto j = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(nodes.size()) - 1));
        if (j == i) continue;
        vs.observe(i, j, toMs(topo.pathDelay(nodes[i], nodes[j])));
      }
    }
  }
  return vs;
}

std::vector<NodeId> vivaldiCentral(const Topology& topo,
                                   const std::vector<NodeId>& candidates,
                                   const std::vector<NodeId>& attachPoints, Rng& rng,
                                   std::size_t n) {
  // Embed candidates and attach points together.
  std::vector<NodeId> all = candidates;
  all.insert(all.end(), attachPoints.begin(), attachPoints.end());
  const VivaldiSystem vs = embedTopology(topo, all, rng);

  std::vector<std::pair<double, NodeId>> ranked;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    double total = 0.0;
    for (std::size_t a = 0; a < attachPoints.size(); ++a) {
      total += vs.predict(c, candidates.size() + a);
    }
    ranked.emplace_back(total, candidates[c]);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < std::min(n, ranked.size()); ++i) out.push_back(ranked[i].second);
  return out;
}

}  // namespace gcopss
