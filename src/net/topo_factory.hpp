#pragma once

#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace gcopss {

// Pre-built topologies used by the paper's evaluation.
struct BenchmarkTopology {
  std::vector<NodeId> routers;  // R1..R6; routers[0] (R1) hosts the RP/server
};

// The six-router lab topology of Fig. 3b: a chain R5-R4-R2-R1-R3-R6 with R1
// in the middle (the RP and, in the IP test, the server attach at R1).
BenchmarkTopology makeBenchmarkTopology(Topology& topo);

struct RocketfuelTopology {
  std::vector<NodeId> core;   // 79 backbone routers (Rocketfuel AS3967 scale)
  std::vector<NodeId> edge;   // 2 edge routers per core router
};

// A deterministic Rocketfuel-like backbone: `coreCount` routers connected as
// a random spanning tree plus extra shortcut links (average degree ~3.5,
// degree-skewed), with integer link delays in [1,20] ms interpreted from the
// published link weights; 2 edge routers per core at 5 ms. Substitutes for
// the Rocketfuel id=3967 map (see DESIGN.md, substitutions).
RocketfuelTopology makeRocketfuelLike(Topology& topo, Rng& rng,
                                      std::size_t coreCount = 79,
                                      std::size_t edgePerCore = 2);

// Attach `count` host nodes, uniformly distributed across `edges` (1 ms
// host-edge delay, as in the paper). Returns the host NodeIds.
std::vector<NodeId> attachHosts(Topology& topo, const std::vector<NodeId>& edges,
                                std::size_t count, Rng& rng);

}  // namespace gcopss
