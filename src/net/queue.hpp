#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "net/packet.hpp"

namespace gcopss {

// Finite-bandwidth links: every directed link owns a transmit ("face") queue
// on its sending side. A packet admitted at time t starts serializing when
// the face frees up and occupies it for size*8/bandwidth; the receiver sees
// it one propagation delay after the last bit leaves. Admission is guarded by
// a pluggable discipline (DropTail or RED below).
//
// Determinism contract (docs/ARCHITECTURE.md): all queueing happens on the
// *sender's* side, before the packet crosses a shard boundary, so the
// parallel engine's conservative lookahead stays the minimum propagation
// delay — serialization only pushes arrivals later, never earlier. A face
// queue is touched exclusively by the lane that owns its sending node
// (transmits and serialization completions both run there), so the hot path
// needs no locks and serial-vs-parallel runs stay bit-identical.

// Which admission discipline guards a face queue.
enum class QueueKind : std::uint8_t {
  DropTail,  // admit until a byte or packet cap is hit
  Red,       // Random Early Detection over the EWMA byte occupancy
};

// Network-wide face-queue configuration (Network::enableLinkQueues). Default
// is disabled: the legacy transmit path (fixed serialization delay, no
// occupancy, no queue drops) is byte-for-byte unchanged.
struct LinkQueueConfig {
  bool enabled = false;
  QueueKind kind = QueueKind::DropTail;
  Bytes capBytes = 64 * 1024;     // hard byte cap per face
  std::size_t capPackets = 256;   // hard packet cap per face

  // RED knobs. Thresholds are fractions of capBytes over the EWMA average
  // occupancy: below redMinFill always admit, above redMaxFill always drop,
  // in between drop with probability ramping linearly up to redMaxProb.
  double redMinFill = 0.25;
  double redMaxFill = 0.75;
  double redMaxProb = 0.10;
  double redWeight = 0.2;  // EWMA weight of the instantaneous occupancy

  // Seed for RED's per-face RNG lanes. Mirrors the
  // FaultPlan::withIndependentStreams idiom: each directed link draws from
  // its own substream seeded by (seed, from, to), so drop decisions depend
  // only on that face's own traffic order — which the deterministic merge
  // preserves at any thread count.
  std::uint64_t seed = 1;

  static LinkQueueConfig dropTail(Bytes capBytes, std::size_t capPackets = 256) {
    LinkQueueConfig c;
    c.enabled = true;
    c.kind = QueueKind::DropTail;
    c.capBytes = capBytes;
    c.capPackets = capPackets;
    return c;
  }
  static LinkQueueConfig red(Bytes capBytes, std::uint64_t seed = 1) {
    LinkQueueConfig c;
    c.enabled = true;
    c.kind = QueueKind::Red;
    c.capBytes = capBytes;
    c.seed = seed;
    return c;
  }
};

// Occupancy + lifetime counters for one face queue. `bytesQueued` /
// `packetsQueued` count packets admitted but not yet fully serialized;
// sojourn is the admit -> last-bit-out interval (queue wait + serialization).
struct FaceQueueStats {
  Bytes bytesQueued = 0;
  std::size_t packetsQueued = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t departed = 0;
  std::uint64_t dropped = 0;
  Bytes peakBytesQueued = 0;
  std::size_t peakPacketsQueued = 0;
  SimTime maxSojourn = 0;
  SimTime sojournSum = 0;  // over admitted packets; mean = sojournSum/enqueued
};

// Admission policy of one face queue. Called once per arriving packet, in
// DES order on the sending node's lane (implementations may keep state).
class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;
  // True = admit the packet of `size` into a queue currently holding `q`.
  virtual bool admit(const FaceQueueStats& q, Bytes size) = 0;
};

// Admit until the byte or packet cap would be exceeded, then drop.
class DropTailDiscipline final : public QueueDiscipline {
 public:
  DropTailDiscipline(Bytes capBytes, std::size_t capPackets)
      : capBytes_(capBytes), capPackets_(capPackets) {}
  GCOPSS_HOT bool admit(const FaceQueueStats& q, Bytes size) override {
    return q.bytesQueued + size <= capBytes_ && q.packetsQueued + 1 <= capPackets_;
  }

 private:
  Bytes capBytes_;
  std::size_t capPackets_;
};

// Random Early Detection (Floyd & Jacobson '93, simplified): track an EWMA
// of the byte occupancy; admit below minBytes, drop above maxBytes, and in
// between drop with probability ramping linearly to maxProb. The byte and
// packet caps stay as hard physical limits. Every random decision comes from
// this face's own seeded lane, so verdicts are a pure function of the face's
// arrival sequence (deterministic at any thread count).
class RedDiscipline final : public QueueDiscipline {
 public:
  RedDiscipline(const LinkQueueConfig& cfg, std::uint64_t laneSeed)
      : capBytes_(cfg.capBytes),
        capPackets_(cfg.capPackets),
        minBytes_(cfg.redMinFill * static_cast<double>(cfg.capBytes)),
        maxBytes_(cfg.redMaxFill * static_cast<double>(cfg.capBytes)),
        maxProb_(cfg.redMaxProb),
        weight_(cfg.redWeight),
        rng_(laneSeed) {
    assert(minBytes_ < maxBytes_ && "redMinFill must be below redMaxFill");
  }

  GCOPSS_HOT bool admit(const FaceQueueStats& q, Bytes size) override {
    avg_ = (1.0 - weight_) * avg_ + weight_ * static_cast<double>(q.bytesQueued);
    if (q.bytesQueued + size > capBytes_ || q.packetsQueued + 1 > capPackets_) {
      return false;  // physical buffer full: forced tail drop
    }
    if (avg_ < minBytes_) return true;
    if (avg_ >= maxBytes_) return false;
    const double p = maxProb_ * (avg_ - minBytes_) / (maxBytes_ - minBytes_);
    return !rng_.bernoulli(p);
  }

  double avgBytes() const { return avg_; }

 private:
  Bytes capBytes_;
  std::size_t capPackets_;
  double minBytes_;
  double maxBytes_;
  double maxProb_;
  double weight_;
  double avg_ = 0.0;
  Rng rng_;
};

// One directed link's transmit queue: lazy serialization bookkeeping
// (`freeAt_` = when the face's last admitted bit leaves) plus occupancy
// stats. The owner (Network) schedules the depart() completion on the
// sending node's lane — see the shard-confinement note at the top.
class FaceQueue {
 public:
  FaceQueue(NodeId from, NodeId to, double bandwidthBps,
            std::unique_ptr<QueueDiscipline> disc)
      : from_(from), to_(to), bandwidthBps_(bandwidthBps), disc_(std::move(disc)) {}

  struct Admission {
    bool admitted = false;
    SimTime txDone = 0;  // when the last bit leaves the sender (valid if admitted)
  };

  GCOPSS_HOT Admission admit(SimTime now, Bytes size) {
    if (!disc_->admit(stats_, size)) {
      ++stats_.dropped;
      return {};
    }
    const SimTime txStart = freeAt_ > now ? freeAt_ : now;
    const SimTime txDone = txStart + txTime(size);
    freeAt_ = txDone;
    ++stats_.enqueued;
    stats_.bytesQueued += size;
    ++stats_.packetsQueued;
    if (stats_.bytesQueued > stats_.peakBytesQueued) {
      stats_.peakBytesQueued = stats_.bytesQueued;
    }
    if (stats_.packetsQueued > stats_.peakPacketsQueued) {
      stats_.peakPacketsQueued = stats_.packetsQueued;
    }
    const SimTime sojourn = txDone - now;
    stats_.sojournSum += sojourn;
    if (sojourn > stats_.maxSojourn) stats_.maxSojourn = sojourn;
    return {true, txDone};
  }

  // Serialization completion for a packet of `size` admitted earlier.
  GCOPSS_HOT void depart(Bytes size) {
    assert(stats_.packetsQueued > 0 && stats_.bytesQueued >= size);
    stats_.bytesQueued -= size;
    --stats_.packetsQueued;
    ++stats_.departed;
  }

  // Time until the face would start serializing a packet admitted `now`
  // (0 = idle). The queue-side analogue of Node::cpuBacklog().
  SimTime backlog(SimTime now) const { return freeAt_ > now ? freeAt_ - now : 0; }

  GCOPSS_HOT SimTime txTime(Bytes size) const {
    return static_cast<SimTime>(static_cast<double>(size) * 8.0 / bandwidthBps_ *
                                kSecond);
  }

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  const FaceQueueStats& stats() const { return stats_; }

 private:
  NodeId from_;
  NodeId to_;
  double bandwidthBps_;
  std::unique_ptr<QueueDiscipline> disc_;
  SimTime freeAt_ = 0;
  FaceQueueStats stats_;
};

// Whole-network roll-up of every face queue (read from sequential context).
struct QueueAggregate {
  std::uint64_t enqueued = 0;
  std::uint64_t departed = 0;
  std::uint64_t dropped = 0;
  Bytes peakBytesQueued = 0;       // max over faces
  std::size_t peakPacketsQueued = 0;
  SimTime maxSojourn = 0;
  SimTime sojournSum = 0;
  double meanSojournMs() const {
    return enqueued == 0 ? 0.0
                         : toMs(sojournSum) / static_cast<double>(enqueued);
  }
  double maxSojournMs() const { return toMs(maxSojourn); }
};

// Per-face RED lane seed: a pure function of (config seed, direction) —
// byte-compatible with FaultInjector::prepareLanes' substream derivation.
inline std::uint64_t faceLaneSeed(std::uint64_t seed, NodeId from, NodeId to) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
      static_cast<std::uint32_t>(to);
  return mix64(seed ^ mix64(key ^ 0x9e3779b97f4a7c15ULL));
}

// Build the configured discipline for the (from -> to) face. RED gets its
// own per-direction RNG lane; DropTail is stateless.
std::unique_ptr<QueueDiscipline> makeQueueDiscipline(const LinkQueueConfig& cfg,
                                                     NodeId from, NodeId to);

}  // namespace gcopss
