#include "net/topo_factory.hpp"

#include <cassert>
#include <string>

namespace gcopss {

BenchmarkTopology makeBenchmarkTopology(Topology& topo) {
  BenchmarkTopology out;
  for (int i = 1; i <= 6; ++i) out.routers.push_back(topo.addNode("R" + std::to_string(i)));
  const auto& r = out.routers;
  const SimTime lan = ms(1);
  // Fig. 3b: R5 - R4 - R2 - R1 - R3 - R6
  topo.addLink(r[4], r[3], lan);  // R5-R4
  topo.addLink(r[3], r[1], lan);  // R4-R2
  topo.addLink(r[1], r[0], lan);  // R2-R1
  topo.addLink(r[0], r[2], lan);  // R1-R3
  topo.addLink(r[2], r[5], lan);  // R3-R6
  return out;
}

RocketfuelTopology makeRocketfuelLike(Topology& topo, Rng& rng,
                                      std::size_t coreCount, std::size_t edgePerCore) {
  assert(coreCount >= 2);
  RocketfuelTopology out;
  out.core.reserve(coreCount);
  for (std::size_t i = 0; i < coreCount; ++i) {
    out.core.push_back(topo.addNode("core" + std::to_string(i)));
  }

  // Random spanning tree with preferential attachment toward earlier nodes,
  // giving the hub-skewed degree distribution of measured ISP backbones.
  for (std::size_t i = 1; i < coreCount; ++i) {
    // Bias: sample two candidates, attach to the lower-indexed one.
    const auto c1 = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(i) - 1));
    const auto c2 = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(i) - 1));
    const std::size_t parent = c1 < c2 ? c1 : c2;
    topo.addLink(out.core[i], out.core[parent], ms(rng.uniformInt(1, 20)));
  }
  // Shortcut links to reach average core degree ~3.5.
  const std::size_t extraLinks = coreCount * 3 / 4;
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extraLinks && attempts < extraLinks * 50) {
    ++attempts;
    const auto a = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(coreCount) - 1));
    const auto b = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(coreCount) - 1));
    if (a == b || topo.hasLink(out.core[a], out.core[b])) continue;
    topo.addLink(out.core[a], out.core[b], ms(rng.uniformInt(1, 20)));
    ++added;
  }

  // Edge routers: `edgePerCore` per core router at 5 ms.
  for (std::size_t i = 0; i < coreCount; ++i) {
    for (std::size_t e = 0; e < edgePerCore; ++e) {
      const NodeId er = topo.addNode("edge" + std::to_string(i) + "_" + std::to_string(e));
      topo.addLink(er, out.core[i], ms(5));
      out.edge.push_back(er);
    }
  }
  return out;
}

std::vector<NodeId> attachHosts(Topology& topo, const std::vector<NodeId>& edges,
                                std::size_t count, Rng& rng) {
  assert(!edges.empty());
  std::vector<NodeId> hosts;
  hosts.reserve(count);
  // Uniform distribution: round-robin over a shuffled edge list so host
  // counts per edge differ by at most one.
  std::vector<NodeId> order = edges;
  rng.shuffle(order);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId host = topo.addNode("host" + std::to_string(i));
    topo.addLink(host, order[i % order.size()], ms(1));
    hosts.push_back(host);
  }
  return hosts;
}

}  // namespace gcopss
