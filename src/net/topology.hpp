#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "net/packet.hpp"

namespace gcopss {

// An undirected weighted graph of nodes and links. Link weight (= propagation
// delay) drives shortest-path routing, which every protocol stack in this
// repo shares: NDN FIB population, COPSS RP paths and IP unicast all follow
// the same SPF next-hop tables, as in the paper's simulator.
class Topology {
 public:
  struct Link {
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
    SimTime delay = 0;
    double bandwidthBps = 1e9;
  };

  NodeId addNode(std::string label = {});
  void addLink(NodeId a, NodeId b, SimTime delay, double bandwidthBps = 1e9);

  std::size_t nodeCount() const { return labels_.size(); }
  std::size_t linkCount() const { return links_.size(); }
  const std::string& label(NodeId n) const { return labels_.at(static_cast<std::size_t>(n)); }

  bool hasLink(NodeId a, NodeId b) const;
  const Link& linkBetween(NodeId a, NodeId b) const;
  // Index of the (a, b) link into links() — the stable handle face queues
  // key on. Same adjacency scan as linkBetween; throws if absent.
  std::size_t linkIndexBetween(NodeId a, NodeId b) const;
  const std::vector<Link>& links() const { return links_; }
  // Retune link capacity after construction (delay-based routing is
  // unaffected, so no route invalidation is needed).
  void setLinkBandwidth(NodeId a, NodeId b, double bps);
  void setAllBandwidths(double bps);
  // Smallest propagation delay over all links; 0 on an empty graph. This is
  // the upper bound for the parallel engine's conservative lookahead: no
  // packet can cross a shard boundary in less simulated time.
  SimTime minLinkDelay() const {
    SimTime m = 0;
    for (const Link& l : links_) m = (m == 0 || l.delay < m) ? l.delay : m;
    return m;
  }
  const std::vector<NodeId>& neighbors(NodeId n) const {
    return adjacency_.at(static_cast<std::size_t>(n));
  }
  // Per-node (neighbor, links() index) pairs — the data-path adjacency view
  // Network uses to walk a node's outgoing faces without hash probes.
  const std::vector<std::pair<NodeId, std::size_t>>& adjacentLinks(NodeId n) const {
    return adjLinks_.at(static_cast<std::size_t>(n));
  }

  // Next hop from `from` toward `to` along the min-delay path. Computes and
  // caches one SPF tree per source on demand.
  NodeId nextHop(NodeId from, NodeId to) const;
  SimTime pathDelay(NodeId from, NodeId to) const;
  std::vector<NodeId> path(NodeId from, NodeId to) const;
  std::size_t hopCount(NodeId from, NodeId to) const;

  // Drop all cached SPF state (call after mutating the graph).
  void invalidateRoutes() { spf_.clear(); }

 private:
  struct SpfTree {
    std::vector<SimTime> dist;
    std::vector<NodeId> parent;  // parent[v] = previous hop on path source->v
  };
  const SpfTree& spfFrom(NodeId source) const;

  std::vector<std::string> labels_;
  std::vector<Link> links_;
  std::vector<std::vector<NodeId>> adjacency_;
  // (a,b) -> index into links_, a < b
  std::unordered_map<std::uint64_t, std::size_t> linkIndex_;
  // Per-node (neighbor, links_ index): the data-path link lookup is a linear
  // scan of a node's few adjacent links instead of a hash probe.
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> adjLinks_;
  mutable std::unordered_map<NodeId, SpfTree> spf_;

  static std::uint64_t key(NodeId a, NodeId b);
};

}  // namespace gcopss
