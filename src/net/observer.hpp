#pragma once

#include "common/units.hpp"
#include "net/packet.hpp"

namespace gcopss {

// Where a packet copy died inside the Network. Conservation audits partition
// every copy into delivered / dropped(reason) / in-flight, so each drop site
// in Network must name its reason here.
enum class DropReason : std::uint8_t {
  WireFault,     // FaultInjector verdict (random loss or link down window)
  NodeFailed,    // addressed to a blackholed/crashed node
  BufferFull,    // receiver CPU backlog exceeded dropBacklog
  CrashedQueued, // accepted pre-crash, CPU died with the packet still queued
  QueueDrop,     // refused by the sender's face queue (DropTail cap / RED)
};

constexpr const char* dropReasonName(DropReason r) {
  switch (r) {
    case DropReason::WireFault: return "wire-fault";
    case DropReason::NodeFailed: return "node-failed";
    case DropReason::BufferFull: return "buffer-full";
    case DropReason::CrashedQueued: return "crashed-queued";
    case DropReason::QueueDrop: return "queue-drop";
  }
  return "?";
}

// Passive tap on every packet movement through the Network. Null by default
// and costs one pointer test per event, so the data path is unchanged in
// unchecked runs. The invariant checker (src/check) is the main client; the
// hooks are deliberately low-level (packet copies, not protocol semantics)
// so the checker derives conservation without trusting router code.
class PacketObserver {
 public:
  virtual ~PacketObserver() = default;

  // A copy was put on the wire from `from` toward `to`.
  virtual void onWireSend(NodeId from, NodeId to, const PacketPtr& pkt, SimTime now) {
    (void)from; (void)to; (void)pkt; (void)now;
  }
  // A copy entered `at`'s CPU queue. fromFace == kInvalidNode for local
  // origination (application publish), else the wire it arrived on.
  virtual void onCpuEnqueue(NodeId at, NodeId fromFace, const PacketPtr& pkt, SimTime now) {
    (void)at; (void)fromFace; (void)pkt; (void)now;
  }
  // A copy finished CPU service and is being handed to Node::handle().
  virtual void onHandle(NodeId at, NodeId fromFace, const PacketPtr& pkt, SimTime now) {
    (void)at; (void)fromFace; (void)pkt; (void)now;
  }
  // A copy died. `at` is the node it was headed to (receiver for wire drops).
  virtual void onDrop(NodeId at, const PacketPtr& pkt, DropReason reason, SimTime now) {
    (void)at; (void)pkt; (void)reason; (void)now;
  }
};

}  // namespace gcopss
