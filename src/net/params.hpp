#pragma once

#include "common/units.hpp"

namespace gcopss {

// Calibration constants for per-packet processing costs. The paper's own
// large-scale simulator is "parameterized based on microbenchmarks of our
// implementation"; these presets mirror the numbers it reports:
//   - RP processing (FIB lookup + decapsulation + ST lookup): 3.3 ms
//   - IP game-server processing (recipient resolution, location translation,
//     collision detection): ~6 ms per update, plus per-recipient unicast cost
//   - IP routers are an order of magnitude cheaper than content routers
// EXPERIMENTS.md records which preset each reproduced table/figure uses.
struct SimParams {
  // --- content routers (G-COPSS engine, Fig. 2) ---
  SimTime copssForwardCost = usF(100);  // ST lookup + forward at transit router
  SimTime rpProcessCost = msF(3.3);     // decap + ST lookup at the RP
  SimTime subscribeCost = usF(100);     // ST update on (Un)Subscribe
  SimTime fibUpdateCost = usF(100);

  // --- NDN engine ---
  SimTime ndnInterestCost = usF(150);  // CS + PIT + FIB per Interest
  SimTime ndnDataCost = usF(100);      // PIT consume + forward per Data

  // --- IP baseline ---
  SimTime ipForwardCost = usF(10);      // plain IP forwarding
  SimTime serverProcessCost = msF(6.0);  // game logic per incoming update
  SimTime serverUnicastCost = usF(30);   // per-recipient copy at the server

  // --- end hosts ---
  SimTime hostProcessCost = usF(10);

  // --- queueing / loss ---
  // A node drops arriving packets once its CPU backlog exceeds this bound
  // (models finite buffers; 0 = infinite). The NDN microbenchmark relies on
  // this to reproduce the paper's loss-amplified latencies.
  SimTime dropBacklog = 0;

  double defaultBandwidthBps = 1e9;

  // Preset used for the testbed microbenchmark (Section V-A): six software
  // routers on a LAN, latency dominated by router processing. Costs scaled
  // so G-COPSS lands near the published ~8.5 ms average.
  static SimParams microbench();

  // Preset for the large-scale trace-driven experiments (Section V-B),
  // matching the constants the paper states explicitly.
  static SimParams largeScale();
};

inline SimParams SimParams::microbench() {
  SimParams p;
  p.copssForwardCost = usF(900);
  p.rpProcessCost = msF(1.4);
  p.subscribeCost = usF(200);
  p.ndnInterestCost = usF(1000);
  p.ndnDataCost = usF(750);
  p.ipForwardCost = usF(120);
  p.serverProcessCost = usF(600);
  p.serverUnicastCost = usF(150);
  p.hostProcessCost = usF(20);
  return p;
}

inline SimParams SimParams::largeScale() {
  SimParams p;
  p.copssForwardCost = usF(100);
  p.rpProcessCost = msF(3.3);
  p.ndnInterestCost = usF(150);
  p.ndnDataCost = usF(100);
  p.ipForwardCost = usF(10);
  p.serverProcessCost = msF(6.0);
  p.serverUnicastCost = usF(30);
  return p;
}

}  // namespace gcopss
