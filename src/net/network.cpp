#include "net/network.hpp"

#include <cassert>
#include <stdexcept>

namespace gcopss {

Node::Node(NodeId id, Network& net)
    : id_(id), net_(&net), shardSim_(&net.sim()) {}

SimTime Node::cpuBacklog() const {
  const SimTime now = shardSim_->now();
  return cpuFreeAt_ > now ? cpuFreeAt_ - now : 0;
}

SimTime Node::faceQueueBacklog() const {
  return net_->maxFaceBacklog(id_, shardSim_->now());
}

void Node::send(NodeId toFace, PacketPtr pkt) { net_->transmit(id_, toFace, std::move(pkt)); }

void Node::sendAfter(SimTime delay, NodeId toFace, PacketPtr pkt) {
  // Scheduled on this node's own lane: the timer stays shard-local and the
  // transmit it fires takes the normal cross-shard path.
  shardSim_->schedule(delay, [this, toFace, p = std::move(pkt)]() mutable {
    net_->transmit(id_, toFace, std::move(p));
  });
}

void Node::extendCpuBusy(SimTime extra) {
  const SimTime now = shardSim_->now();
  cpuFreeAt_ = (cpuFreeAt_ > now ? cpuFreeAt_ : now) + extra;
}

void Node::deliverLocal(PacketPtr pkt) {
  net_->enqueueCpu(id_, kInvalidNode, std::move(pkt));
}

Simulator& Node::sim() { return *shardSim_; }
const Simulator& Node::sim() const { return *shardSim_; }
const SimParams& Node::params() const { return net_->params_; }

Network::Network(Simulator& sim, Topology& topo, SimParams params)
    : sim_(sim), topo_(topo), params_(params) {}

void Network::attach(std::unique_ptr<Node> node) {
  const auto idx = static_cast<std::size_t>(node->id());
  assert(idx < topo_.nodeCount() && "node id must come from the topology");
  if (nodes_.size() <= idx) nodes_.resize(idx + 1);
  assert(!nodes_[idx] && "node id already attached");
  if (par_) node->shardSim_ = &par_->shard(shardOf_[idx]);
  nodes_[idx] = std::move(node);
}

Node& Network::node(NodeId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= nodes_.size() || !nodes_[idx]) throw std::out_of_range("no node attached");
  return *nodes_[idx];
}

bool Network::hasNode(NodeId id) const {
  const auto idx = static_cast<std::size_t>(id);
  return idx < nodes_.size() && nodes_[idx] != nullptr;
}

void Network::meterTx(Bytes size) {
  if (par_) {
    const std::size_t sh = ParallelSimulator::currentShard();
    if (sh != ParallelSimulator::kNoShard) {
      shardMeters_[sh].bytes += size;
      ++shardMeters_[sh].pkts;
      return;
    }
  }
  totalLinkBytes_ += size;
  ++totalLinkPackets_;
}

void Network::meterDrop() {
  if (par_) {
    const std::size_t sh = ParallelSimulator::currentShard();
    if (sh != ParallelSimulator::kNoShard) {
      ++shardMeters_[sh].drops;
      return;
    }
  }
  ++totalDrops_;
}

void Network::meterQueueDrop() {
  // A queue refusal is a drop (totalDrops) with its own reason counter.
  if (par_) {
    const std::size_t sh = ParallelSimulator::currentShard();
    if (sh != ParallelSimulator::kNoShard) {
      ++shardMeters_[sh].drops;
      ++shardMeters_[sh].queueDrops;
      return;
    }
  }
  ++totalDrops_;
  ++totalQueueDrops_;
}

void Network::transmit(NodeId from, NodeId to, PacketPtr pkt) {
  if (!faceQueues_.empty()) {
    transmitQueued(from, to, std::move(pkt));
    return;
  }
  const Topology::Link& link = topo_.linkBetween(from, to);
  meterTx(pkt->size);
  // `now` on the sender's lane: identical to sim_.now() when serial, and in
  // a parallel round the executing shard's clock (during a global phase all
  // lanes agree — ParallelSimulator lines them up first).
  Node& sender = node(from);
  const SimTime now = sender.shardSim_->now();
  if (observer_) observer_->onWireSend(from, to, pkt, now);
  const auto txTime = static_cast<SimTime>(
      static_cast<double>(pkt->size) * 8.0 / link.bandwidthBps * kSecond);
  SimTime arrival = link.delay + txTime;
  if (fault_) {
    const auto verdict = fault_->onTransmit(from, to, now);
    if (verdict.drop) {
      meterDrop();
      if (observer_) observer_->onDrop(to, pkt, DropReason::WireFault, now);
      return;  // lost on the wire (random loss or down window)
    }
    arrival += verdict.extraDelay;  // jitter / reorder hold
  }
  if (par_) {
    // Every delivery — same-shard or not — funnels through the engine's
    // merge with a key that ignores the shard mapping, so per-node event
    // order is identical at any thread count. (Capture fits InlineHandler's
    // inline storage: 24 bytes.)
    const ParallelSimulator::RemoteKey key{
        now, static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)),
        sender.sendSeq_++};
    par_->post(shardOf_[static_cast<std::size_t>(to)], now + arrival, key,
               [this, to, from, p = std::move(pkt)]() mutable {
                 enqueueCpu(to, from, std::move(p));
               });
    return;
  }
  sim_.schedule(arrival, [this, to, from, p = std::move(pkt)]() mutable {
    enqueueCpu(to, from, std::move(p));
  });
}

void Network::transmitQueued(NodeId from, NodeId to, PacketPtr pkt) {
  const std::size_t li = topo_.linkIndexBetween(from, to);
  assert(2 * li + 1 < faceQueues_.size() &&
         "link added after enableLinkQueues — call it once the topology is final");
  const Topology::Link& link = topo_.links()[li];
  meterTx(pkt->size);
  Node& sender = node(from);
  const SimTime now = sender.shardSim_->now();
  if (observer_) observer_->onWireSend(from, to, pkt, now);
  // Fault verdicts keep their one-draw-per-transmit order (the RNG-lane
  // streams stay aligned with the unqueued path); loss is modelled at the
  // egress port, before the packet takes queue space.
  SimTime extraDelay = 0;
  if (fault_) {
    const auto verdict = fault_->onTransmit(from, to, now);
    if (verdict.drop) {
      meterDrop();
      if (observer_) observer_->onDrop(to, pkt, DropReason::WireFault, now);
      return;
    }
    extraDelay = verdict.extraDelay;
  }
  FaceQueue& q = faceQueues_[2 * li + (from == link.a ? 0 : 1)];
  const auto adm = q.admit(now, pkt->size);
  if (!adm.admitted) {
    meterQueueDrop();
    if (observer_) observer_->onDrop(to, pkt, DropReason::QueueDrop, now);
    return;
  }
  // Serialization completion on the sender's own lane: closes the occupancy
  // window (the queue never crosses a shard boundary).
  sender.shardSim_->scheduleAt(adm.txDone, [&q, sz = pkt->size]() { q.depart(sz); });
  // Receiver sees the packet one propagation delay after the last bit
  // leaves. txDone >= now, so cross-shard arrivals still respect the
  // min-propagation-delay lookahead the parallel engine is built on.
  const SimTime arrival = (adm.txDone - now) + link.delay + extraDelay;
  if (par_) {
    const ParallelSimulator::RemoteKey key{
        now, static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)),
        sender.sendSeq_++};
    par_->post(shardOf_[static_cast<std::size_t>(to)], now + arrival, key,
               [this, to, from, p = std::move(pkt)]() mutable {
                 enqueueCpu(to, from, std::move(p));
               });
    return;
  }
  sim_.schedule(arrival, [this, to, from, p = std::move(pkt)]() mutable {
    enqueueCpu(to, from, std::move(p));
  });
}

void Network::enableLinkQueues(const LinkQueueConfig& cfg) {
  assert(cfg.enabled && "pass an enabled LinkQueueConfig (or never call)");
  queueCfg_ = cfg;
  faceQueues_.clear();
  faceQueues_.reserve(topo_.links().size() * 2);
  for (const Topology::Link& l : topo_.links()) {
    faceQueues_.emplace_back(l.a, l.b, l.bandwidthBps,
                             makeQueueDiscipline(cfg, l.a, l.b));
    faceQueues_.emplace_back(l.b, l.a, l.bandwidthBps,
                             makeQueueDiscipline(cfg, l.b, l.a));
  }
}

FaceQueue& Network::faceQueueRef(NodeId from, NodeId to) {
  const std::size_t li = topo_.linkIndexBetween(from, to);
  const Topology::Link& link = topo_.links()[li];
  return faceQueues_.at(2 * li + (from == link.a ? 0 : 1));
}

const FaceQueue& Network::faceQueue(NodeId from, NodeId to) const {
  return const_cast<Network*>(this)->faceQueueRef(from, to);
}

SimTime Network::maxFaceBacklog(NodeId id, SimTime now) const {
  if (faceQueues_.empty()) return 0;
  SimTime worst = 0;
  for (const auto& [nb, li] : topo_.adjacentLinks(id)) {
    const Topology::Link& link = topo_.links()[li];
    const FaceQueue& q = faceQueues_[2 * li + (id == link.a ? 0 : 1)];
    const SimTime b = q.backlog(now);
    if (b > worst) worst = b;
  }
  return worst;
}

QueueAggregate Network::queueAggregate() const {
  QueueAggregate agg;
  for (const FaceQueue& q : faceQueues_) {
    const FaceQueueStats& s = q.stats();
    agg.enqueued += s.enqueued;
    agg.departed += s.departed;
    agg.dropped += s.dropped;
    if (s.peakBytesQueued > agg.peakBytesQueued) agg.peakBytesQueued = s.peakBytesQueued;
    if (s.peakPacketsQueued > agg.peakPacketsQueued) {
      agg.peakPacketsQueued = s.peakPacketsQueued;
    }
    if (s.maxSojourn > agg.maxSojourn) agg.maxSojourn = s.maxSojourn;
    agg.sojournSum += s.sojournSum;
  }
  return agg;
}

void Network::enableParallel(ParallelSimulator& psim) {
  // Packet refcounts cross shard boundaries the moment a multicast fans out,
  // so a serial-refcount build must not reach this engine (satellite 4).
  static_assert(PacketThreading::kAtomicRefCount,
                "Network::enableParallel requires atomic Packet refcounts; "
                "rebuild without GCOPSS_SERIAL_REFCOUNT for --threads > 1");
  assert(&psim.globalLane() == &sim_ &&
         "psim's global lane must be this network's Simulator");
  assert(!observer_ && "packet observers are serial-only");
  assert(psim.lookahead() <= topo_.minLinkDelay() &&
         "conservative lookahead must not exceed the min link delay");
  assert((!fault_ || fault_->plan().links.empty() ||
          fault_->plan().independentStreams) &&
         "parallel fault plans need FaultPlan::withIndependentStreams()");
  par_ = &psim;
  const std::size_t k = psim.workerCount();
  shardOf_.resize(topo_.nodeCount());
  for (std::size_t i = 0; i < shardOf_.size(); ++i) shardOf_[i] = i % k;
  shardMeters_.assign(k, ShardMeter{});
  for (auto& n : nodes_) {
    if (n) n->shardSim_ = &psim.shard(shardOf_[static_cast<std::size_t>(n->id())]);
  }
}

void Network::applyFaultPlan(const FaultPlan& plan) {
  fault_ = std::make_unique<FaultInjector>(plan);
  if (plan.independentStreams) {
    // Build every directed link's RNG lane up front: at run time a lane is
    // touched only by the shard owning the sending endpoint, and the lane
    // map itself is never mutated again.
    std::vector<std::pair<NodeId, NodeId>> directed;
    directed.reserve(topo_.links().size() * 2);
    for (const Topology::Link& l : topo_.links()) {
      directed.emplace_back(l.a, l.b);
      directed.emplace_back(l.b, l.a);
    }
    fault_->prepareLanes(directed);
  }
  for (const NodeFaultSpec& nf : fault_->plan().nodes) {
    sim_.scheduleAt(nf.crashAt, [this, id = nf.node]() {
      setNodeFailed(id, true);
      ++fault_->stats().crashes;
      if (hasNode(id)) node(id).onCrash();
    });
    if (nf.restartAt >= 0) {
      sim_.scheduleAt(nf.restartAt, [this, id = nf.node]() {
        setNodeFailed(id, false);
        ++fault_->stats().restarts;
        if (hasNode(id)) node(id).onRestart();
      });
    }
  }
}

void Network::setNodeFailed(NodeId id, bool failed) {
  if (failed) {
    failed_.insert(id);
  } else {
    failed_.erase(id);
  }
}

void Network::enqueueCpu(NodeId at, NodeId fromFace, PacketPtr pkt) {
  // Runs on `at`'s own lane in parallel mode (the transmit merge routed it
  // there), so the node's CPU state needs no synchronization. failed_ is
  // written only from sequential phases, so the read below is safe too.
  Node& n = node(at);
  Simulator& lsim = *n.shardSim_;
  if (observer_) observer_->onCpuEnqueue(at, fromFace, pkt, lsim.now());
  if (!failed_.empty() && failed_.count(at)) {
    meterDrop();
    if (observer_) observer_->onDrop(at, pkt, DropReason::NodeFailed, lsim.now());
    return;  // crashed node: blackhole
  }
  const SimTime now = lsim.now();
  if (params_.dropBacklog > 0 && n.cpuBacklog() > params_.dropBacklog) {
    ++n.drops_;
    meterDrop();
    if (observer_) observer_->onDrop(at, pkt, DropReason::BufferFull, lsim.now());
    return;  // finite buffer overflow: packet lost
  }
  const SimTime start = n.cpuFreeAt_ > now ? n.cpuFreeAt_ : now;
  const SimTime done = start + n.serviceTime(pkt);
  n.cpuFreeAt_ = done;
  lsim.scheduleAt(done, [this, at, fromFace, p = std::move(pkt)]() mutable {
    if (!failed_.empty() && failed_.count(at)) {
      meterDrop();
      if (observer_) {
        observer_->onDrop(at, p, DropReason::CrashedQueued, node(at).shardSim_->now());
      }
      return;  // accepted pre-crash, but the CPU died with it still queued
    }
    if (observer_) observer_->onHandle(at, fromFace, p, node(at).shardSim_->now());
    node(at).handle(fromFace, p);
  });
}

}  // namespace gcopss
