#include "net/network.hpp"

#include <cassert>
#include <stdexcept>

namespace gcopss {

Node::Node(NodeId id, Network& net) : id_(id), net_(&net) {}

SimTime Node::cpuBacklog() const {
  const SimTime now = net_->sim_.now();
  return cpuFreeAt_ > now ? cpuFreeAt_ - now : 0;
}

void Node::send(NodeId toFace, PacketPtr pkt) { net_->transmit(id_, toFace, std::move(pkt)); }

void Node::sendAfter(SimTime delay, NodeId toFace, PacketPtr pkt) {
  net_->sim_.schedule(delay, [this, toFace, p = std::move(pkt)]() mutable {
    net_->transmit(id_, toFace, std::move(p));
  });
}

void Node::extendCpuBusy(SimTime extra) {
  const SimTime now = net_->sim_.now();
  cpuFreeAt_ = (cpuFreeAt_ > now ? cpuFreeAt_ : now) + extra;
}

void Node::deliverLocal(PacketPtr pkt) {
  net_->enqueueCpu(id_, kInvalidNode, std::move(pkt));
}

Simulator& Node::sim() { return net_->sim_; }
const Simulator& Node::sim() const { return net_->sim_; }
const SimParams& Node::params() const { return net_->params_; }

Network::Network(Simulator& sim, Topology& topo, SimParams params)
    : sim_(sim), topo_(topo), params_(params) {}

void Network::attach(std::unique_ptr<Node> node) {
  const auto idx = static_cast<std::size_t>(node->id());
  assert(idx < topo_.nodeCount() && "node id must come from the topology");
  if (nodes_.size() <= idx) nodes_.resize(idx + 1);
  assert(!nodes_[idx] && "node id already attached");
  nodes_[idx] = std::move(node);
}

Node& Network::node(NodeId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= nodes_.size() || !nodes_[idx]) throw std::out_of_range("no node attached");
  return *nodes_[idx];
}

bool Network::hasNode(NodeId id) const {
  const auto idx = static_cast<std::size_t>(id);
  return idx < nodes_.size() && nodes_[idx] != nullptr;
}

void Network::transmit(NodeId from, NodeId to, PacketPtr pkt) {
  const Topology::Link& link = topo_.linkBetween(from, to);
  totalLinkBytes_ += pkt->size;
  ++totalLinkPackets_;
  if (observer_) observer_->onWireSend(from, to, pkt, sim_.now());
  const auto txTime = static_cast<SimTime>(
      static_cast<double>(pkt->size) * 8.0 / link.bandwidthBps * kSecond);
  SimTime arrival = link.delay + txTime;
  if (fault_) {
    const auto verdict = fault_->onTransmit(from, to, sim_.now());
    if (verdict.drop) {
      ++totalDrops_;
      if (observer_) observer_->onDrop(to, pkt, DropReason::WireFault, sim_.now());
      return;  // lost on the wire (random loss or down window)
    }
    arrival += verdict.extraDelay;  // jitter / reorder hold
  }
  sim_.schedule(arrival, [this, to, from, p = std::move(pkt)]() mutable {
    enqueueCpu(to, from, std::move(p));
  });
}

void Network::applyFaultPlan(const FaultPlan& plan) {
  fault_ = std::make_unique<FaultInjector>(plan);
  for (const NodeFaultSpec& nf : fault_->plan().nodes) {
    sim_.scheduleAt(nf.crashAt, [this, id = nf.node]() {
      setNodeFailed(id, true);
      ++fault_->stats().crashes;
      if (hasNode(id)) node(id).onCrash();
    });
    if (nf.restartAt >= 0) {
      sim_.scheduleAt(nf.restartAt, [this, id = nf.node]() {
        setNodeFailed(id, false);
        ++fault_->stats().restarts;
        if (hasNode(id)) node(id).onRestart();
      });
    }
  }
}

void Network::setNodeFailed(NodeId id, bool failed) {
  if (failed) {
    failed_.insert(id);
  } else {
    failed_.erase(id);
  }
}

void Network::enqueueCpu(NodeId at, NodeId fromFace, PacketPtr pkt) {
  if (observer_) observer_->onCpuEnqueue(at, fromFace, pkt, sim_.now());
  if (!failed_.empty() && failed_.count(at)) {
    ++totalDrops_;
    if (observer_) observer_->onDrop(at, pkt, DropReason::NodeFailed, sim_.now());
    return;  // crashed node: blackhole
  }
  Node& n = node(at);
  const SimTime now = sim_.now();
  if (params_.dropBacklog > 0 && n.cpuBacklog() > params_.dropBacklog) {
    ++n.drops_;
    ++totalDrops_;
    if (observer_) observer_->onDrop(at, pkt, DropReason::BufferFull, sim_.now());
    return;  // finite buffer overflow: packet lost
  }
  const SimTime start = n.cpuFreeAt_ > now ? n.cpuFreeAt_ : now;
  const SimTime done = start + n.serviceTime(pkt);
  n.cpuFreeAt_ = done;
  sim_.scheduleAt(done, [this, at, fromFace, p = std::move(pkt)]() mutable {
    if (failed_.count(at)) {
      ++totalDrops_;
      if (observer_) observer_->onDrop(at, p, DropReason::CrashedQueued, sim_.now());
      return;  // accepted pre-crash, but the CPU died with it still queued
    }
    if (observer_) observer_->onHandle(at, fromFace, p, sim_.now());
    node(at).handle(fromFace, p);
  });
}

}  // namespace gcopss
