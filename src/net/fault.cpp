#include "net/fault.hpp"

namespace gcopss {

FaultInjector::Verdict FaultInjector::onTransmit(NodeId from, NodeId to, SimTime now) {
  Verdict v;
  for (const LinkFaultSpec& s : plan_.links) {
    if (!s.applies(from, to)) continue;
    if (s.downAt(now)) {
      ++stats_.linkDownLoss;
      v.drop = true;
      return v;  // a dead link needs no further draws
    }
    // Draw in a fixed order per matching spec so the stream stays aligned
    // with the schedule regardless of which faults fire.
    if (s.lossProb > 0.0 && rng_.bernoulli(s.lossProb)) {
      ++stats_.randomLoss;
      v.drop = true;
      return v;
    }
    if (s.jitterMax > 0) {
      const SimTime extra = static_cast<SimTime>(
          rng_.uniform() * static_cast<double>(s.jitterMax));
      if (extra > 0) {
        ++stats_.jittered;
        v.extraDelay += extra;
      }
    }
    if (s.reorderProb > 0.0 && rng_.bernoulli(s.reorderProb)) {
      ++stats_.reordered;
      v.extraDelay += s.reorderDelay;
    }
  }
  return v;
}

}  // namespace gcopss
