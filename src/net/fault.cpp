#include "net/fault.hpp"

#include <cassert>

namespace gcopss {

namespace {

// Shared draw logic: one pass over the matching specs, consuming `rng` in a
// fixed order per spec so the stream stays aligned with the schedule
// regardless of which faults fire.
FaultInjector::Verdict drawVerdict(const FaultPlan& plan, NodeId from,
                                   NodeId to, SimTime now, Rng& rng,
                                   FaultStats& stats) {
  FaultInjector::Verdict v;
  for (const LinkFaultSpec& s : plan.links) {
    if (!s.applies(from, to)) continue;
    if (s.downAt(now)) {
      ++stats.linkDownLoss;
      v.drop = true;
      return v;  // a dead link needs no further draws
    }
    if (s.lossProb > 0.0 && rng.bernoulli(s.lossProb)) {
      ++stats.randomLoss;
      v.drop = true;
      return v;
    }
    if (s.jitterMax > 0) {
      const SimTime extra = static_cast<SimTime>(
          rng.uniform() * static_cast<double>(s.jitterMax));
      if (extra > 0) {
        ++stats.jittered;
        v.extraDelay += extra;
      }
    }
    if (s.reorderProb > 0.0 && rng.bernoulli(s.reorderProb)) {
      ++stats.reordered;
      v.extraDelay += s.reorderDelay;
    }
  }
  return v;
}

}  // namespace

FaultInjector::Verdict FaultInjector::onTransmit(NodeId from, NodeId to,
                                                 SimTime now) {
  if (!lanes_.empty()) {
    const auto it = lanes_.find(laneKey(from, to));
    assert(it != lanes_.end() && "transmit on a link absent from the lane set");
    Lane& lane = it->second;
    return drawVerdict(plan_, from, to, now, lane.rng, lane.stats);
  }
  return drawVerdict(plan_, from, to, now, rng_, stats_);
}

void FaultInjector::prepareLanes(
    const std::vector<std::pair<NodeId, NodeId>>& directed) {
  if (!plan_.independentStreams) return;
  lanes_.clear();
  lanes_.reserve(directed.size());
  for (const auto& [from, to] : directed) {
    // Substream seed: a pure function of (plan seed, direction), so a lane's
    // draws never depend on other links' traffic or on lane build order.
    const std::uint64_t seed =
        mix64(plan_.seed ^ mix64(laneKey(from, to) ^ 0x9e3779b97f4a7c15ULL));
    lanes_.emplace(laneKey(from, to), Lane(seed));
  }
}

const FaultStats& FaultInjector::stats() const {
  if (lanes_.empty()) return stats_;
  agg_ = stats_;  // sequential counters: crashes, restarts
  // gcopss-tidy: allow(unordered-iter) commutative u64 sums; aggregation order cannot reach any output
  for (const auto& [key, lane] : lanes_) {
    (void)key;
    agg_.randomLoss += lane.stats.randomLoss;
    agg_.linkDownLoss += lane.stats.linkDownLoss;
    agg_.jittered += lane.stats.jittered;
    agg_.reordered += lane.stats.reordered;
  }
  return agg_;
}

}  // namespace gcopss
