#include "net/queue.hpp"

namespace gcopss {

std::unique_ptr<QueueDiscipline> makeQueueDiscipline(const LinkQueueConfig& cfg,
                                                     NodeId from, NodeId to) {
  switch (cfg.kind) {
    case QueueKind::Red:
      return std::make_unique<RedDiscipline>(cfg,
                                             faceLaneSeed(cfg.seed, from, to));
    case QueueKind::DropTail:
      break;
  }
  return std::make_unique<DropTailDiscipline>(cfg.capBytes, cfg.capPackets);
}

}  // namespace gcopss
