#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace gcopss {

// Vivaldi decentralized network coordinates (Dabek et al., SIGCOMM 2004) —
// the mechanism Section IV-B cites for selecting new RPs without a central
// view of the topology. 2-D Euclidean coordinates plus a non-negative height
// (modeling access-link delay); each node adjusts its coordinate after every
// RTT observation, weighted by the relative confidence of the two nodes.
struct Coordinate {
  double x = 0.0;
  double y = 0.0;
  double height = 0.0;
};

class VivaldiSystem {
 public:
  struct Options {
    double ce = 0.25;          // error adaptation gain
    double cc = 0.25;          // coordinate adaptation gain
    double initialError = 1.0;
    std::uint64_t seed = 1;
  };

  VivaldiSystem(std::size_t nodeCount, Options opts);
  explicit VivaldiSystem(std::size_t nodeCount) : VivaldiSystem(nodeCount, Options{}) {}

  // Node i measured `rttMs` to node j and adjusts its own coordinate using
  // j's current coordinate and confidence.
  void observe(std::size_t i, std::size_t j, double rttMs);

  // Predicted latency between two nodes, in the same unit as the inputs.
  double predict(std::size_t i, std::size_t j) const;

  const Coordinate& coordinate(std::size_t i) const { return coords_.at(i); }
  double errorEstimate(std::size_t i) const { return errors_.at(i); }
  std::size_t size() const { return coords_.size(); }

 private:
  Options opts_;
  std::vector<Coordinate> coords_;
  std::vector<double> errors_;
  Rng rng_;
};

// Embed a node set of `topo` into Vivaldi space by running `rounds` rounds
// in which every node measures a few random peers (using the topology's
// true path delays as RTT/2). Returns the converged system.
VivaldiSystem embedTopology(const Topology& topo, const std::vector<NodeId>& nodes,
                            Rng& rng, std::size_t rounds = 40,
                            std::size_t peersPerRound = 4);

// The paper's decentralized RP-selection: rank `candidates` by their
// Vivaldi-predicted total distance to `attachPoints` and return the best
// `n`, most central first. A coordinate-only analogue of exact closeness
// centrality — no global topology knowledge required.
std::vector<NodeId> vivaldiCentral(const Topology& topo,
                                   const std::vector<NodeId>& candidates,
                                   const std::vector<NodeId>& attachPoints, Rng& rng,
                                   std::size_t n);

}  // namespace gcopss
