#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/name.hpp"
#include "ndn/forwarder.hpp"
#include "net/network.hpp"

namespace gcopss::ndngame {

// One game update carried inside an accumulated segment.
struct UpdateEntry {
  std::uint64_t seq = 0;  // publication index + 1
  SimTime publishedAt = 0;
  Name cd;
  Bytes size = 0;
};

// An accumulated-update Data segment (the VoCCN-style optimisation of
// Section V-A: all updates within one accumulation window travel together).
struct UpdateSegment : ndn::DataPacket {
  UpdateSegment(Name n, Bytes payload, SimTime created, std::uint64_t segSeq,
                std::vector<UpdateEntry> entries)
      : DataPacket(std::move(n), payload, created, segSeq),
        updates(std::move(entries)) {}
  std::vector<UpdateEntry> updates;
};

// A plain NDN router (no COPSS engine) for the pure-NDN baseline.
class NdnRouterNode : public Node {
 public:
  NdnRouterNode(NodeId id, Network& net, ndn::Forwarder::Options opts = {});

  void handle(NodeId fromFace, const PacketPtr& pkt) override;
  SimTime serviceTime(const PacketPtr& pkt) const override;

  ndn::Forwarder& engine() { return fwd_; }

 private:
  ndn::Forwarder fwd_;
};

// A player in the query/response NDN game (VoCCN [18] transport, ACT [19]
// player management assumed: everyone knows every other player). Producer
// side accumulates its trace updates into segments every `accumulation`
// interval; consumer side keeps a pipeline of `window` outstanding Interests
// per polled peer, with timeout-driven retransmission.
class NdnGamePlayer : public Node {
 public:
  struct Options {
    std::size_t window = 3;              // outstanding Interests per peer
    SimTime accumulation = ms(100);      // update accumulation interval t
    SimTime rto = seconds(1);            // retransmission timeout
    SimTime rtoMax = seconds(8);
    Bytes segmentOverhead = 16;
  };

  // Latency callback: (updateSeq, publishedAt, deliveredAt).
  using DeliveryCallback =
      std::function<void(const UpdateEntry& entry, SimTime deliveredAt)>;

  NdnGamePlayer(NodeId id, Network& net, std::uint32_t playerIdx, NodeId edgeFace,
                Options opts);

  static Name prefixFor(std::uint32_t playerIdx);

  // Which other players this one polls, and which CDs it can see.
  void setPeers(std::vector<std::uint32_t> peerIdx) { peers_ = std::move(peerIdx); }
  void setVisibilityFilter(std::function<bool(const Name&)> seesCd) {
    seesCd_ = std::move(seesCd);
  }
  void setDeliveryCallback(DeliveryCallback cb) { onDelivery_ = std::move(cb); }

  // Kick off the consumer pipelines and the producer accumulation timer.
  void start();

  // Producer side: called by the harness for each trace record of this player.
  void publishUpdate(const Name& cd, Bytes size, std::uint64_t seq);

  void handle(NodeId fromFace, const PacketPtr& pkt) override;
  SimTime serviceTime(const PacketPtr&) const override {
    return params().hostProcessCost;
  }

  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t segmentsProduced() const { return segSeq_; }

 private:
  void produceSegment();
  void respond(std::uint64_t segSeq);
  void expressInterest(std::uint32_t peer, std::uint64_t segSeq, SimTime rto);
  void onSegment(const UpdateSegment& seg);

  std::uint32_t playerIdx_;
  NodeId edgeFace_;
  Options opts_;
  std::vector<std::uint32_t> peers_;
  std::function<bool(const Name&)> seesCd_;
  DeliveryCallback onDelivery_;

  // Producer state.
  std::vector<UpdateEntry> pending_;
  std::uint64_t segSeq_ = 0;
  std::map<std::uint64_t, RefPtr<const UpdateSegment>> segments_;
  std::set<std::uint64_t> waitingInterests_;  // segment seqs requested early
  bool producerTimerRunning_ = false;

  // Consumer state, per peer.
  struct PeerState {
    std::uint64_t nextToRequest = 1;
    std::set<std::uint64_t> outstanding;
    std::set<std::uint64_t> received;
  };
  std::map<std::uint32_t, PeerState> peerState_;

  std::uint64_t nextNonce_ = (static_cast<std::uint64_t>(id()) << 32) + 1;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace gcopss::ndngame
