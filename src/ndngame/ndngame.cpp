#include "ndngame/ndngame.hpp"

#include <cassert>

namespace gcopss::ndngame {

NdnRouterNode::NdnRouterNode(NodeId id, Network& net, ndn::Forwarder::Options opts)
    : Node(id, net),
      fwd_(ndn::Forwarder::Hooks{
               [this](NodeId face, PacketPtr pkt) { send(face, std::move(pkt)); },
               nullptr, nullptr},
           opts, [this]() { return sim().now(); }) {}

void NdnRouterNode::handle(NodeId fromFace, const PacketPtr& pkt) {
  switch (pkt->kind) {
    case Packet::Kind::Interest:
      fwd_.onInterest(fromFace, packet_pointer_cast<ndn::InterestPacket>(pkt));
      return;
    case Packet::Kind::Data:
      fwd_.onData(fromFace, packet_pointer_cast<ndn::DataPacket>(pkt));
      return;
    default:
      return;
  }
}

SimTime NdnRouterNode::serviceTime(const PacketPtr& pkt) const {
  return pkt->kind == Packet::Kind::Interest ? params().ndnInterestCost
                                             : params().ndnDataCost;
}

NdnGamePlayer::NdnGamePlayer(NodeId id, Network& net, std::uint32_t playerIdx,
                             NodeId edgeFace, Options opts)
    : Node(id, net), playerIdx_(playerIdx), edgeFace_(edgeFace), opts_(opts) {}

Name NdnGamePlayer::prefixFor(std::uint32_t playerIdx) {
  return Name({"player", std::to_string(playerIdx)});
}

void NdnGamePlayer::start() {
  for (std::uint32_t peer : peers_) {
    PeerState& st = peerState_[peer];
    for (std::size_t i = 0; i < opts_.window; ++i) {
      expressInterest(peer, st.nextToRequest++, opts_.rto);
    }
  }
}

void NdnGamePlayer::publishUpdate(const Name& cd, Bytes size, std::uint64_t seq) {
  pending_.push_back(UpdateEntry{seq, sim().now(), cd, size});
  if (!producerTimerRunning_) {
    producerTimerRunning_ = true;
    sim().schedule(opts_.accumulation, [this]() { produceSegment(); });
  }
}

void NdnGamePlayer::produceSegment() {
  producerTimerRunning_ = false;
  if (pending_.empty()) return;
  Bytes payload = opts_.segmentOverhead;
  for (const auto& e : pending_) payload += e.size;
  ++segSeq_;
  const Name name = prefixFor(playerIdx_).append("u").append(std::to_string(segSeq_));
  // createdAt carries the segment's production time; per-update latency uses
  // each entry's own publishedAt.
  auto seg = makePacket<UpdateSegment>(name, payload, sim().now(), segSeq_,
                                                   std::move(pending_));
  pending_.clear();
  segments_[segSeq_] = seg;
  if (waitingInterests_.erase(segSeq_) > 0) respond(segSeq_);
}

void NdnGamePlayer::respond(std::uint64_t segSeq) {
  const auto it = segments_.find(segSeq);
  assert(it != segments_.end());
  send(edgeFace_, it->second);
}

void NdnGamePlayer::expressInterest(std::uint32_t peer, std::uint64_t segSeq,
                                    SimTime rto) {
  PeerState& st = peerState_[peer];
  if (st.received.count(segSeq)) return;
  st.outstanding.insert(segSeq);
  const Name name = prefixFor(peer).append("u").append(std::to_string(segSeq));
  send(edgeFace_, makePacket<ndn::InterestPacket>(name, nextNonce_++));
  // Timeout: if still outstanding after `rto`, re-express with backoff.
  sim().schedule(rto, [this, peer, segSeq, rto]() {
    const auto it = peerState_.find(peer);
    if (it == peerState_.end() || !it->second.outstanding.count(segSeq)) return;
    ++retransmissions_;
    const SimTime next = std::min(rto * 2, opts_.rtoMax);
    expressInterest(peer, segSeq, next);
  });
}

void NdnGamePlayer::onSegment(const UpdateSegment& seg) {
  // Name: /player/<peer>/u/<seq>
  if (seg.name.size() < 4) return;
  const auto peer = static_cast<std::uint32_t>(std::stoul(seg.name.at(1)));
  const auto it = peerState_.find(peer);
  if (it == peerState_.end()) return;
  PeerState& st = it->second;
  if (!st.received.insert(seg.seq).second) return;  // duplicate
  st.outstanding.erase(seg.seq);
  const SimTime now = sim().now();
  for (const UpdateEntry& e : seg.updates) {
    if (seesCd_ && !seesCd_(e.cd)) continue;  // outside my AoI
    if (onDelivery_) onDelivery_(e, now);
  }
  // Slide the pipeline forward by one.
  expressInterest(peer, st.nextToRequest++, opts_.rto);
}

void NdnGamePlayer::handle(NodeId fromFace, const PacketPtr& pkt) {
  (void)fromFace;
  switch (pkt->kind) {
    case Packet::Kind::Interest: {
      const auto& interest = packet_cast<ndn::InterestPacket>(pkt);
      // Producer side: /player/<me>/u/<seq>.
      if (interest.name.size() < 4) return;
      const std::uint64_t segSeq = std::stoull(interest.name.at(3));
      if (segments_.count(segSeq)) {
        respond(segSeq);
      } else {
        waitingInterests_.insert(segSeq);  // reply when produced (pipelining)
      }
      return;
    }
    case Packet::Kind::Data: {
      const auto* seg = dynamic_cast<const UpdateSegment*>(pkt.get());
      if (seg) onSegment(*seg);
      return;
    }
    default:
      return;
  }
}

}  // namespace gcopss::ndngame
