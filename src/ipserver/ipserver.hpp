#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/name.hpp"
#include "net/network.hpp"

namespace gcopss::ipserver {

constexpr Bytes kIpHeaderBytes = 28;

// The IP baseline's data packet (Section V-A): source, destination, payload —
// plus the game CD, which only the *server* interprets (IP routers forward
// purely on the destination address).
struct IpUnicastPacket : Packet {
  static constexpr Kind kKind = Kind::IpUnicast;
  IpUnicastPacket(NodeId srcIn, NodeId dstIn, Name cdIn, Bytes payload,
                  SimTime published, std::uint64_t seqIn)
      : Packet(kKind, kIpHeaderBytes + payload), src(srcIn), dst(dstIn),
        cd(std::move(cdIn)), payloadSize(payload), publishedAt(published), seq(seqIn) {}

  NodeId src;
  NodeId dst;
  Name cd;
  Bytes payloadSize;
  SimTime publishedAt;
  std::uint64_t seq;  // publication index + 1
};

// Destination-address forwarding along min-delay paths.
class IpRouter : public Node {
 public:
  IpRouter(NodeId id, Network& net) : Node(id, net) {}

  void handle(NodeId fromFace, const PacketPtr& pkt) override;
  SimTime serviceTime(const PacketPtr&) const override { return params().ipForwardCost; }
};

// Maps every game CD to the players that must receive updates for it, and
// every player to its home server. Real MMO deployments shard by player
// (each client talks to its home server, which resolves recipients from the
// global registry), so multi-server capacity scales with the player count
// rather than being hostage to one hot map area. Built once by the harness
// from player positions (the C/S architecture's server knows all players).
class ServerDirectory {
 public:
  void addRecipient(const Name& cd, NodeId player);
  void setHomeServer(NodeId player, NodeId server);

  const std::vector<NodeId>& recipients(const Name& cd) const;
  NodeId serverForPlayer(NodeId player) const;

 private:
  std::map<Name, std::vector<NodeId>> recipients_;
  std::map<NodeId, NodeId> homeServer_;
};

// The game server: receives every update, runs the game logic
// (serverProcessCost), then unicasts a copy to each interested player at
// serverUnicastCost per copy — the serialization that makes the server the
// bottleneck the paper measures.
class GameServer : public Node {
 public:
  GameServer(NodeId id, Network& net, const ServerDirectory& dir)
      : Node(id, net), dir_(&dir) {}

  void handle(NodeId fromFace, const PacketPtr& pkt) override;
  SimTime serviceTime(const PacketPtr&) const override {
    return params().serverProcessCost;
  }

  std::uint64_t updatesServed() const { return updatesServed_; }
  std::uint64_t copiesSent() const { return copiesSent_; }

 private:
  const ServerDirectory* dir_;
  std::uint64_t updatesServed_ = 0;
  std::uint64_t copiesSent_ = 0;
};

// A player endpoint in the C/S architecture.
class IpClient : public Node {
 public:
  using DeliveryCallback =
      std::function<void(const IpUnicastPacket& update, SimTime now)>;

  IpClient(NodeId id, Network& net, NodeId edgeFace, const ServerDirectory& dir)
      : Node(id, net), edgeFace_(edgeFace), dir_(&dir) {}

  void setDeliveryCallback(DeliveryCallback cb) { onDelivery_ = std::move(cb); }

  // Publish one update (routed to the CD's responsible server).
  void publish(const Name& cd, Bytes payload, std::uint64_t seq);

  void handle(NodeId fromFace, const PacketPtr& pkt) override;
  SimTime serviceTime(const PacketPtr&) const override {
    return params().hostProcessCost;
  }

 private:
  NodeId edgeFace_;
  const ServerDirectory* dir_;
  DeliveryCallback onDelivery_;
};

}  // namespace gcopss::ipserver
