#include "ipserver/ipserver.hpp"

#include <cassert>
#include <stdexcept>

namespace gcopss::ipserver {

void IpRouter::handle(NodeId fromFace, const PacketPtr& pkt) {
  (void)fromFace;
  const auto& ip = packet_cast<IpUnicastPacket>(pkt);
  if (ip.dst == id()) return;  // routers are never endpoints here
  const NodeId next = network().topology().nextHop(id(), ip.dst);
  if (next == kInvalidNode) return;
  send(next, pkt);
}

void ServerDirectory::addRecipient(const Name& cd, NodeId player) {
  recipients_[cd].push_back(player);
}

void ServerDirectory::setHomeServer(NodeId player, NodeId server) {
  homeServer_[player] = server;
}

const std::vector<NodeId>& ServerDirectory::recipients(const Name& cd) const {
  static const std::vector<NodeId> kEmpty;
  const auto it = recipients_.find(cd);
  return it != recipients_.end() ? it->second : kEmpty;
}

NodeId ServerDirectory::serverForPlayer(NodeId player) const {
  const auto it = homeServer_.find(player);
  if (it == homeServer_.end()) throw std::out_of_range("player has no home server");
  return it->second;
}

void GameServer::handle(NodeId fromFace, const PacketPtr& pkt) {
  (void)fromFace;
  const auto& update = packet_cast<IpUnicastPacket>(pkt);
  ++updatesServed_;
  // Fan the update out as unicast copies, one per interested player; each
  // copy costs serverUnicastCost of server CPU, so copies leave back-to-back
  // and later updates queue behind the whole burst.
  const SimParams& p = params();
  SimTime offset = 0;
  for (NodeId player : dir_->recipients(update.cd)) {
    if (player == update.src) continue;  // publishers see their own action locally
    extendCpuBusy(p.serverUnicastCost);
    offset += p.serverUnicastCost;
    auto copy = makePacket<IpUnicastPacket>(id(), player, update.cd,
                                            update.payloadSize, update.publishedAt,
                                            update.seq);
    const NodeId next = network().topology().nextHop(id(), player);
    assert(next != kInvalidNode);
    sendAfter(offset, next, std::move(copy));
    ++copiesSent_;
  }
}

void IpClient::publish(const Name& cd, Bytes payload, std::uint64_t seq) {
  const NodeId server = dir_->serverForPlayer(id());
  auto pkt = makePacket<IpUnicastPacket>(id(), server, cd, payload, sim().now(), seq);
  send(edgeFace_, std::move(pkt));
}

void IpClient::handle(NodeId fromFace, const PacketPtr& pkt) {
  (void)fromFace;
  const auto& ip = packet_cast<IpUnicastPacket>(pkt);
  if (ip.dst != id()) {
    // Stray packet (should not happen on a host); drop.
    return;
  }
  if (onDelivery_) onDelivery_(ip, sim().now());
}

}  // namespace gcopss::ipserver
